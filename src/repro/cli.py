"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``      Run one or more configurations on a workload and print a table::

                 python -m repro run --workload m88ksim \\
                     --config no_predict lvp_all drvp_all_dead

             With ``--out-dir`` the run becomes a crash-safe *campaign*:
             every cell is journaled durably as it completes, and an
             interrupted (Ctrl-C, SIGTERM, SIGKILL) run is finished later
             with ``--resume``, re-executing only the cells that never
             committed::

                 python -m repro run --workload m88ksim --out-dir runs --run-id demo
                 python -m repro run --resume demo --out-dir runs

``suite``    Run configurations across all nine workloads (a figure row),
             optionally fanned out over worker processes; ``--out-dir`` /
             ``--run-id`` journal the campaign the same way::

                 python -m repro suite --config no_predict lvp_all drvp_all_dead_lv --jobs 4

             With ``--workers N`` the campaign runs under the fault-tolerant
             supervisor (:mod:`repro.runtime.service`): N leased worker
             processes, heartbeat-monitored, with crashed/wedged workers'
             cells stolen back and re-dispatched; ``--store DIR`` adds the
             shared content-addressed result store so identical cells are
             never re-simulated across campaigns::

                 python -m repro suite --out-dir runs --workers 4 --store /var/cache/repro

``serve``    Long-running campaign service: watch a spool directory for
             campaign spec JSON files, run each under the supervisor,
             journal + report under ``--out-dir``, resuming any campaign a
             killed service left unfinished::

                 python -m repro serve --spool spool/ --out-dir runs --workers 4 --store store/

``metrics``  Run configurations, then emit results + execution metrics
             (session-cache hit rates, sim wall time, pool utilization) as
             structured JSON::

                 python -m repro metrics --workload m88ksim --config no_predict drvp_all

``profile``  Show a workload's register-reuse profile and the four lists::

                 python -m repro profile --workload li --threshold 0.8

``realloc``  Run the Section 7.3 reallocator and show the rewritten
             instructions::

                 python -m repro realloc --workload mgrid

``lint``     Statically verify workload program variants (or an ``.s`` file)
             against the RVP rule catalog; ``--reuse-report`` adds the
             static-vs-profiled reuse-class comparison::

                 python -m repro lint --all --variant base srvp_dead realloc
                 python -m repro lint li --json
                 python -m repro lint --asm bad.s

``fuzz``     Property-based differential fuzzing: generate random verifier-clean
             programs and judge them against the oracle families in
             :mod:`repro.testing.oracles`; failures are greedily shrunk and can
             be written out as assembler reproducers::

                 python -m repro fuzz --runs 200 --seed 0
                 python -m repro fuzz --runs 50 --oracle trace-equivalence --json
                 python -m repro fuzz --runs 200 --out fuzz-repro/

``bench``    Benchmark execution-core throughput (funcsim Minstr/s, pipeline
             cycles/s, cold-vs-warm session latency), write ``BENCH_<n>.json``
             and compare against the previous baseline::

                 python -m repro bench --quick
                 python -m repro bench --json --baseline BENCH_1.json

``list``     List available workloads and configuration names.

Exit codes: 0 success, 1 lint/fuzz failures or bench regressions were found,
2 usage/internal error or a *partial* campaign (some cells failed; the
journal records which, and ``--resume`` re-executes exactly those), 130 when
a campaign was interrupted (resume hint printed).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.experiment import CONFIG_NAMES, ExperimentRunner
from .core.results import ResultTable, render_metrics
from .core.session import ParallelSuiteRunner
from .uarch.config import aggressive_config, table1_config
from .uarch.recovery import RecoveryScheme
from .workloads.suite import WORKLOAD_CLASSES


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-insts", type=int, default=40_000, help="committed-instruction budget per run")
    parser.add_argument("--threshold", type=float, default=0.8, help="profile predictability threshold")
    parser.add_argument("--wide", action="store_true", help="use the Section 7.4 16-wide machine")
    parser.add_argument(
        "--recovery",
        choices=[s.value for s in RecoveryScheme],
        default="selective",
        help="value-misprediction recovery scheme",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print execution metrics (cache hit rates, sim wall time) as JSON afterwards",
    )


def _maybe_profile(args: argparse.Namespace) -> None:
    if getattr(args, "profile", False):
        print(render_metrics())


def _runner(args: argparse.Namespace, workload: str) -> ExperimentRunner:
    machine = aggressive_config() if args.wide else table1_config()
    return ExperimentRunner(workload, machine=machine, max_instructions=args.max_insts, threshold=args.threshold)


# ----------------------------------------------------------------------
# Journaled campaigns (run/suite --out-dir, run --resume)
# ----------------------------------------------------------------------
def _campaign_table(report) -> ResultTable:
    """A ResultTable with every campaign cell, completed or failed."""
    table = ResultTable()
    for result in report.results:
        table.add(result)
    for cell_id, status in report.statuses.items():
        if status != "ok":
            workload, config, _recovery = cell_id.split("/", 2)
            table.mark_failed(workload, config, status=status, message=report.failures.get(cell_id, ""))
    return table


def _render_campaign(report, args: argparse.Namespace) -> int:
    counts = report.counts()
    total = sum(counts.values())
    verb = "resumed" if report.resumed else "run"
    restored = f", {report.restored} restored" if report.restored else ""
    from_store = f", {report.store_hits} from store" if report.store_hits else ""
    print(
        f"  campaign {report.run_id} ({verb}): {counts.get('ok', 0)}/{total} cells ok"
        f"{restored}{from_store}, journal {report.journal_path}"
    )
    table = _campaign_table(report)
    print()
    print(table.render_ipc("campaign IPC"))
    if "no_predict" in report.spec.configs:
        print(table.render_speedup("speedups"))
    print(table.render_coverage("coverage/accuracy"))
    footer = table.render_failures()
    if footer:
        print(footer)
    _maybe_profile(args)
    if not report.complete:
        print(
            f"  partial: resume with `repro run --resume {report.run_id} "
            f"--out-dir {getattr(args, 'out_dir', 'runs')}`",
            file=sys.stderr,
        )
        return 2
    return 0


def _campaign_store(args: argparse.Namespace):
    """The shared content-addressed result store named by ``--store``, if any."""
    store_dir = getattr(args, "store", None)
    if not store_dir:
        return None
    from .runtime.store import ResultStore

    return ResultStore(store_dir)


def _run_campaign_cli(args: argparse.Namespace, workloads) -> int:
    from .runtime import CampaignSpec, JournalError, resume_campaign, run_campaign

    jobs = getattr(args, "jobs", 1)
    workers = getattr(args, "workers", None)
    store = _campaign_store(args)
    try:
        if workers:
            # Supervised service path: leased workers, work stealing, shared store.
            from .runtime.service import resume_service_campaign, run_service_campaign

            service_kwargs = {"workers": workers, "store": store}
            if getattr(args, "lease", None):
                service_kwargs["lease_duration"] = args.lease
            if getattr(args, "resume", None):
                report = resume_service_campaign(args.out_dir, args.resume, **service_kwargs)
            else:
                spec = CampaignSpec(
                    workloads=tuple(workloads),
                    configs=tuple(args.config),
                    recoveries=(RecoveryScheme.parse(args.recovery).value,),
                    machine="aggressive" if args.wide else "table1",
                    max_instructions=args.max_insts,
                    threshold=args.threshold,
                    jobs=workers,
                )
                report = run_service_campaign(
                    spec, args.out_dir, run_id=args.run_id, **service_kwargs
                )
        elif getattr(args, "resume", None):
            report = resume_campaign(args.out_dir, args.resume, jobs=jobs, store=store)
        else:
            spec = CampaignSpec(
                workloads=tuple(workloads),
                configs=tuple(args.config),
                recoveries=(RecoveryScheme.parse(args.recovery).value,),
                machine="aggressive" if args.wide else "table1",
                max_instructions=args.max_insts,
                threshold=args.threshold,
                jobs=jobs,
            )
            report = run_campaign(spec, args.out_dir, run_id=args.run_id, store=store)
    except JournalError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        run_id = getattr(args, "resume", None) or args.run_id or "<run-id>"
        print(
            f"\nrepro: interrupted; committed cells are journaled — resume with "
            f"`repro run --resume {run_id} --out-dir {args.out_dir}`",
            file=sys.stderr,
        )
        return 130
    return _render_campaign(report, args)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.resume or args.out_dir:
        if args.out_dir is None:
            print("repro: --resume requires --out-dir (where the journal lives)", file=sys.stderr)
            return 2
        if not args.resume and not args.workload:
            print("repro: run needs --workload (or --resume RUN_ID)", file=sys.stderr)
            return 2
        return _run_campaign_cli(args, (args.workload,) if args.workload else ())
    if not args.workload:
        print("repro: run needs --workload", file=sys.stderr)
        return 2
    runner = _runner(args, args.workload)
    table = ResultTable()
    scheme = RecoveryScheme.parse(args.recovery)
    for config in args.config:
        table.add(runner.run(config, recovery=scheme))
    print(table.render_ipc(f"{args.workload} (IPC, {scheme.value} recovery)"))
    if "no_predict" in args.config:
        print(table.render_speedup("speedups"))
    print(table.render_coverage("coverage/accuracy"))
    _maybe_profile(args)
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    if args.resume or args.out_dir:
        if args.out_dir is None:
            print("repro: --resume requires --out-dir (where the journal lives)", file=sys.stderr)
            return 2
        return _run_campaign_cli(args, tuple(WORKLOAD_CLASSES))
    table = ResultTable()
    scheme = RecoveryScheme.parse(args.recovery)
    machine = aggressive_config() if args.wide else table1_config()
    if args.jobs > 1:
        runner = ParallelSuiteRunner(
            workloads=tuple(WORKLOAD_CLASSES),
            configs=tuple(args.config),
            recoveries=(scheme,),
            machine=machine,
            max_instructions=args.max_insts,
            threshold=args.threshold,
            jobs=args.jobs,
        )
        report = runner.run()
        for result in report.results:
            table.add(result)
        mode = "processes" if report.used_processes else "serial fallback"
        print(f"  {len(report.results)}/{len(runner.cells)} cells done ({args.jobs} jobs, {mode})")
        for cell, error in report.failures.items():
            print(f"  FAILED {cell.workload}/{cell.config}/{cell.recovery}: {error}")
    else:
        for name in WORKLOAD_CLASSES:
            runner = _runner(args, name)
            for config in args.config:
                table.add(runner.run(config, recovery=scheme))
            print(f"  {name} done")
    print()
    print(table.render_speedup(f"suite speedups ({scheme.value} recovery)"))
    print(table.render_coverage("coverage/accuracy"))
    _maybe_profile(args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Campaign service: drain spooled campaign specs through the supervisor.

    Each ``<name>.json`` dropped into ``--spool`` is a campaign config (the
    same canonical payload ``CampaignSpec.config_dict`` produces); the
    service runs it under supervision (leased workers, work stealing, shared
    ``--store``), writes ``<run-id>.report.json`` next to the journal, and
    moves the spec file to ``done/`` (or ``failed/`` with a ``.error`` note).
    A service killed mid-campaign resumes that campaign's journal on restart
    before taking new specs.
    """
    import json
    import os
    import time as _time

    from .runtime import CampaignSpec, JournalError, list_run_ids
    from .runtime.service import resume_service_campaign, run_service_campaign

    store = _campaign_store(args)
    os.makedirs(args.spool, exist_ok=True)
    os.makedirs(args.out_dir, exist_ok=True)
    done_dir = os.path.join(args.spool, "done")
    failed_dir = os.path.join(args.spool, "failed")
    os.makedirs(done_dir, exist_ok=True)
    os.makedirs(failed_dir, exist_ok=True)

    def _report_payload(report) -> dict:
        return {
            "run_id": report.run_id,
            "complete": report.complete,
            "counts": report.counts(),
            "statuses": report.statuses,
            "failures": report.failures,
            "restored": report.restored,
            "store_hits": report.store_hits,
        }

    def _finish(report) -> bool:
        from .runtime import atomic_write_json

        atomic_write_json(
            os.path.join(args.out_dir, f"{report.run_id}.report.json"), _report_payload(report)
        )
        print(
            f"serve: campaign {report.run_id}: {report.counts().get('ok', 0)}"
            f"/{len(report.statuses)} ok"
            + (f", {report.store_hits} from store" if report.store_hits else "")
        )
        return report.complete

    all_ok = True
    # Crash recovery first: any journal under out_dir with pending cells is a
    # campaign a previous service instance never finished.
    for run_id in list_run_ids(args.out_dir):
        try:
            from .runtime import RunJournal, journal_path

            journal = RunJournal.open(journal_path(args.out_dir, run_id))
            pending = journal.pending_cells()
            journal.close()
            if not pending:
                continue
            print(f"serve: resuming interrupted campaign {run_id} ({len(pending)} cells left)")
            report = resume_service_campaign(
                args.out_dir, run_id, workers=args.workers, store=store,
                lease_duration=args.lease,
            )
            all_ok = _finish(report) and all_ok
        except (JournalError, ValueError) as exc:
            print(f"serve: cannot resume {run_id}: {exc}", file=sys.stderr)
            all_ok = False

    try:
        while True:
            specs = sorted(
                name
                for name in os.listdir(args.spool)
                if name.endswith(".json") and os.path.isfile(os.path.join(args.spool, name))
            )
            for name in specs:
                path = os.path.join(args.spool, name)
                stem = name[: -len(".json")]
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                    spec = CampaignSpec.from_config(payload)
                    report = run_service_campaign(
                        spec, args.out_dir, run_id=stem, workers=args.workers,
                        store=store, lease_duration=args.lease,
                    )
                except (JournalError, KeyError, TypeError, ValueError) as exc:
                    os.replace(path, os.path.join(failed_dir, name))
                    with open(os.path.join(failed_dir, f"{stem}.error"), "w", encoding="utf-8") as handle:
                        handle.write(f"{exc!r}\n")
                    print(f"serve: spec {name} failed: {exc}", file=sys.stderr)
                    all_ok = False
                    continue
                os.replace(path, os.path.join(done_dir, name))
                all_ok = _finish(report) and all_ok
            if args.once:
                break
            if not specs:
                _time.sleep(args.poll)
    except KeyboardInterrupt:
        print(
            "\nserve: interrupted; unfinished campaigns resume on the next start",
            file=sys.stderr,
        )
        return 130
    return 0 if all_ok else 2


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run configurations, then emit results + metrics as structured JSON."""
    runner = _runner(args, args.workload)
    table = ResultTable()
    scheme = RecoveryScheme.parse(args.recovery)
    for config in args.config:
        table.add(runner.run(config, recovery=scheme))
    print(table.render_json(include_metrics=True))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    runner = _runner(args, args.workload)
    profile = runner.train_profile()
    lists = runner.profile_lists()
    program = runner.workload.program
    fractions = profile.fig1.fractions()
    print(f"{args.workload}: load reuse (train input) — same {fractions['same']:.1%}, "
          f"dead {fractions['dead']:.1%}, any {fractions['any']:.1%}, any|lvp {fractions['any_or_lvp']:.1%}\n")
    print(f"{'pc':>4s}  {'instruction':30s} {'count':>7s} {'same':>6s} {'lv':>6s}  lists")
    for pc, site in sorted(profile.sites.items()):
        if site.count < 8:
            continue
        tags = [
            name
            for name, member in (
                ("same", pc in lists.same),
                ("dead", pc in lists.dead),
                ("live", pc in lists.live),
                ("lv", pc in lists.last_value),
            )
            if member
        ]
        hint = ""
        if pc in lists.dead:
            hint = f" <- {lists.dead[pc].reg.name}"
        print(
            f"{pc:4d}  {program[pc].render():30s} {site.count:7d} {site.same_rate():6.1%} "
            f"{site.lv_rate():6.1%}  {','.join(tags)}{hint}"
        )
    return 0


def _cmd_realloc(args: argparse.Namespace) -> int:
    runner = _runner(args, args.workload)
    new_program = runner.program_variant("realloc")
    report = runner.realloc_report
    print(f"{args.workload}: dead {report.dead_applied}/{report.dead_attempted} applied, "
          f"lvr {report.lvr_applied}/{report.lvr_attempted} applied")
    changed = 0
    for before, after in zip(runner.workload.program, new_program):
        if before.render() != after.render():
            print(f"  pc {before.pc:3d}:  {before.render():30s} ->  {after.render()}")
            changed += 1
    if not changed:
        print("  (no instructions rewritten)")
    return 0


#: Program variants the linter knows how to build.
LINT_VARIANTS = ("base", "srvp_same", "srvp_dead", "srvp_live", "srvp_live_lv", "realloc")


def _lint_one(session, name: str, variant: str, args: argparse.Namespace):
    """Build one (workload, variant) program plus its verification context."""
    program = session.program_variant(name, 1.0, args.max_insts, variant, None, args.threshold)
    lists = None
    lvr_pcs = set()
    if variant.startswith("srvp_"):
        lists = session.profile_lists(name, 1.0, args.max_insts, args.threshold, loads_only=True)
    elif variant == "realloc":
        lists = session.profile_lists(name, 1.0, args.max_insts, args.threshold, loads_only=False)
        report = session.realloc_report(name, 1.0, args.max_insts, None, args.threshold)
        if report is not None:
            lvr_pcs = report.lvr_pcs
    return program, lists, lvr_pcs


def _sorted_classes(estimate) -> dict:
    """Deterministic per-class pc lists for JSON output."""
    from .analysis.reuse_static import ReuseClass

    return {
        cls.value: sorted(pc for pc, v in estimate.loads.items() if v.reuse is cls)
        for cls in (ReuseClass.SAME, ReuseClass.DEAD, ReuseClass.LAST_VALUE)
    }


def _reuse_report(session, name: str, args: argparse.Namespace):
    from .analysis.reuse_static import StaticReuseEstimator, compare_with_profile, reuse_by_loop_depth
    from .ir.nodes import IRError

    program = session.workload(name).program
    profile = session.train_artifacts(name, 1.0, args.max_insts).profile
    lists = session.profile_lists(name, 1.0, args.max_insts, args.threshold, loads_only=True)
    estimate = StaticReuseEstimator(program).estimate()
    report = compare_with_profile(estimate, profile, lists)
    report["static_classes"] = _sorted_classes(estimate)
    by_depth = reuse_by_loop_depth(program, estimate, lists)
    if by_depth is not None:  # IR-lowered programs carry a source map
        report["by_loop_depth"] = by_depth

    # Symbolic (absint-backed) side-by-side, when the program raises to SSA.
    try:
        from .analysis.reuse_symbolic import (
            SymbolicReuseEstimator,
            candidate_overlap,
            select_rvp_candidates,
            symbolic_reuse_by_depth,
        )

        sym = SymbolicReuseEstimator(program)
    except IRError:
        report["symbolic"] = None
        return report
    sym_estimate = sym.estimate()
    sym_report = compare_with_profile(sym_estimate, profile, lists)
    candidates = select_rvp_candidates(program, sym_estimate)
    report["symbolic"] = {
        "static_counts": sym_report["static_counts"],
        "overlap": sym_report["overlap"],
        "weighted_static_fractions": sym_report["weighted_static_fractions"],
        "static_classes": _sorted_classes(sym_estimate),
        "candidate_overlap": candidate_overlap(candidates, lists),
        "by_loop_depth": symbolic_reuse_by_depth(sym.absint, sym_estimate, lists),
    }
    return report


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis.diagnostics import VerificationError, summarize
    from .analysis.verifier import LintConfig, rule_catalog, verify_program
    from .core.session import get_session

    if args.rules:
        for info in rule_catalog():
            print(f"{info.rule_id}  {info.severity.value:7s}  {info.description}")
        return 0

    config = LintConfig.parse(disabled=args.disable or (), strict=args.strict)
    session = get_session()

    workloads = sorted(WORKLOAD_CLASSES) if args.all else list(args.workload)
    if not workloads and not args.asm:
        print("lint: nothing to lint (name workloads, or use --all / --asm FILE)", file=sys.stderr)
        return 2
    unknown = [name for name in workloads if name not in WORKLOAD_CLASSES]
    if unknown:
        print(f"lint: unknown workload(s) {', '.join(unknown)}", file=sys.stderr)
        return 2

    targets = []  # (label, program, lists, lvr_pcs) or (label, None, exc)
    if args.asm:
        from .isa.assembler import AssemblerError, assemble

        try:
            with open(args.asm) as handle:
                program = assemble(handle.read())
        except (OSError, AssemblerError) as exc:
            print(f"lint: cannot assemble {args.asm}: {exc}", file=sys.stderr)
            return 2
        targets.append((f"asm:{args.asm}", program, None, set()))
    for name in workloads:
        for variant in args.variant:
            targets.append((f"{name}/{variant}", name, variant, None))

    reports = []
    any_errors = False
    for label, first, second, third in targets:
        if isinstance(first, str):  # (label, workload, variant, _)
            try:
                program, lists, lvr_pcs = _lint_one(session, first, second, args)
            except VerificationError as exc:
                # The session's own cache-fill postcondition already rejected
                # this variant; report its diagnostics rather than crashing.
                diagnostics = exc.diagnostics
                program = None
        else:  # (label, program, lists, lvr_pcs)
            program, lists, lvr_pcs = first, second, third
        if program is not None:
            diagnostics = verify_program(program, lists=lists, lvr_pcs=lvr_pcs, config=config)
        summary = summarize(diagnostics)
        any_errors = any_errors or summary["error"] > 0
        reports.append({
            "target": label,
            "summary": summary,
            "diagnostics": [d.to_dict() for d in diagnostics],
        })
        if not args.json:
            if not diagnostics:
                print(f"{label}: ok")
            else:
                print(f"{label}: {summary['error']} error(s), {summary['warning']} warning(s)")
                for diag in diagnostics:
                    print(f"  {diag.render()}")

    payload = {"ok": not any_errors, "targets": reports}
    if args.reuse_report:
        payload["reuse_report"] = [_reuse_report(session, name, args) for name in workloads]
        if not args.json:
            print()
            for entry in payload["reuse_report"]:
                counts = entry["static_counts"]
                weighted = entry["weighted_static_fractions"]
                fig1 = entry["profiled_fig1_fractions"]
                print(
                    f"{entry['program']}: {entry['static_loads']} static loads — "
                    f"same {counts['same']}, dead {counts['dead']}, lv {counts['last_value']}; "
                    f"weighted same {weighted['same']:.1%} (profiled {fig1['same']:.1%}), "
                    f"dead {weighted['dead']:.1%} (profiled {fig1['dead']:.1%})"
                )
                for depth, bucket in entry.get("by_loop_depth", {}).items():
                    print(
                        f"  loop depth {depth}: {bucket['loads']} load(s) — "
                        f"static same {bucket['same']}, dead {bucket['dead']}, lv {bucket['last_value']}; "
                        f"profiled same {bucket['profiled_same']}, dead {bucket['profiled_dead']}, "
                        f"lv {bucket['profiled_last_value']}"
                    )
                symbolic = entry.get("symbolic")
                if symbolic is not None:
                    counts = symbolic["static_counts"]
                    cand = symbolic["candidate_overlap"]
                    print(
                        f"  symbolic: same {counts['same']}, dead {counts['dead']}, "
                        f"lv {counts['last_value']}; candidates vs profiled — "
                        f"same {cand['same']['both']}/{cand['same']['profiled']}, "
                        f"dead {cand['dead']['both']}/{cand['dead']['profiled']}, "
                        f"lv {cand['last_value']['both']}/{cand['last_value']['profiled']}"
                    )
                    for depth, bucket in symbolic["by_loop_depth"].items():
                        reuse = bucket["trip_weighted_reuse"]
                        reuse_text = f"{reuse:.1%}" if reuse is not None else "n/a"
                        print(
                            f"  symbolic depth {depth}: {bucket['loads']} load(s) — "
                            f"same {bucket['same']}, dead {bucket['dead']}, lv {bucket['last_value']}; "
                            f"trip-weighted reuse {reuse_text}"
                        )
    gap_failures = []
    if args.reuse_report and args.max_gap is not None:
        for entry in payload["reuse_report"]:
            weighted = entry["weighted_static_fractions"]
            fig1 = entry["profiled_fig1_fractions"]
            for cls in ("same", "dead", "last_value"):
                gap = abs(weighted.get(cls, 0.0) - fig1.get(cls, 0.0))
                if gap > args.max_gap:
                    gap_failures.append(f"{entry['program']}: {cls} gap {gap:.3f} > {args.max_gap}")
        payload["max_gap_failures"] = gap_failures
        if gap_failures and not args.json:
            print()
            for line in gap_failures:
                print(f"lint: reuse gap exceeded — {line}")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif len(reports) > 1:
        total_err = sum(r["summary"]["error"] for r in reports)
        total_warn = sum(r["summary"]["warning"] for r in reports)
        print(f"\nlint: {len(reports)} target(s), {total_err} error(s), {total_warn} warning(s)")
    if any_errors:
        return 1
    return 3 if gap_failures else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Abstract-interpretation facts + profile-free RVP candidate report."""
    import json

    from .analysis.absint import ProgramAbsint
    from .analysis.reuse_static import StaticReuseEstimator
    from .analysis.reuse_symbolic import (
        SymbolicReuseEstimator,
        candidate_overlap,
        select_rvp_candidates,
        symbolic_reuse_by_depth,
    )
    from .core.session import get_session
    from .ir.nodes import IRError
    from .isa.opcodes import OpKind
    from .testing import GeneratorConfig, generate_case

    names = sorted(WORKLOAD_CLASSES) if args.all else list(args.workload)
    unknown = [name for name in names if name not in WORKLOAD_CLASSES]
    if unknown:
        print(f"analyze: unknown workload(s) {', '.join(unknown)}", file=sys.stderr)
        return 2
    if not names and not args.generated:
        print("analyze: nothing to analyze (name workloads, or use --all / --generated N)", file=sys.stderr)
        return 2

    session = get_session() if names else None
    failures: List[str] = []
    entries = []

    def absint_summary(absint, program) -> dict:
        return {
            "induction": [
                {
                    "function": fn,
                    "header": fact.header,
                    "stride": fact.stride,
                    "depth": fact.depth,
                    "trip": fact.trip,
                }
                for fn, fact in absint.induction_facts()
            ],
            "unreachable_pcs": sorted(absint.unreachable_pcs()),
            "decided_branches": sorted(
                inst.pc
                for inst in program
                if inst.op.kind is OpKind.BRANCH and absint.branch_decision(inst.pc) is not None
            ),
        }

    for name in names:
        program = session.workload(name).program
        entry: dict = {"target": name}
        try:
            sym = SymbolicReuseEstimator(program)
        except IRError as exc:
            entry["error"] = str(exc)
            failures.append(f"{name}: cannot analyze — {exc}")
            entries.append(entry)
            continue
        entry.update(absint_summary(sym.absint, program))
        heur_estimate = StaticReuseEstimator(program).estimate()
        sym_estimate = sym.estimate()
        entry["heuristic_counts"] = heur_estimate.counts()
        entry["symbolic_counts"] = sym_estimate.counts()
        lists = session.profile_lists(name, 1.0, args.max_insts, args.threshold, loads_only=True)
        sym_overlap = candidate_overlap(select_rvp_candidates(program, sym_estimate), lists)
        heur_overlap = candidate_overlap(select_rvp_candidates(program, heur_estimate), lists)
        entry["candidate_overlap"] = sym_overlap
        entry["heuristic_candidate_overlap"] = heur_overlap
        entry["by_loop_depth"] = symbolic_reuse_by_depth(sym.absint, sym_estimate, lists)
        for cls in ("same", "dead"):
            if sym_overlap[cls]["both"] < heur_overlap[cls]["both"]:
                failures.append(
                    f"{name}: symbolic {cls} candidates agree with the profile on "
                    f"{sym_overlap[cls]['both']} site(s), heuristic on {heur_overlap[cls]['both']}"
                )
        entries.append(entry)

    for i in range(args.generated):
        case = generate_case(args.seed + i, GeneratorConfig())
        label = f"gen[{case.seed}]"
        entry = {"target": label}
        try:
            absint = ProgramAbsint(case.program)
        except IRError as exc:
            entry["error"] = str(exc)
            failures.append(f"{label}: cannot analyze — {exc}")
            entries.append(entry)
            continue
        entry.update(absint_summary(absint, case.program))
        entries.append(entry)

    payload = {"ok": not failures, "targets": entries, "failures": failures}
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for entry in entries:
            label = entry["target"]
            if "error" in entry:
                print(f"{label}: ANALYSIS FAILED — {entry['error']}")
                continue
            ivs = entry["induction"]
            trips = [fact for fact in ivs if fact["trip"] is not None]
            print(
                f"{label}: {len(ivs)} induction variable(s) ({len(trips)} with proven trip), "
                f"{len(entry['decided_branches'])} decided branch(es), "
                f"{len(entry['unreachable_pcs'])} interval-unreachable pc(s)"
            )
            for fact in ivs:
                trip = f", trip {fact['trip']}" if fact["trip"] is not None else ""
                print(
                    f"  iv {fact['function']}/{fact['header']}: stride {fact['stride']}, "
                    f"depth {fact['depth']}{trip}"
                )
            if "symbolic_counts" in entry:
                heur, symc = entry["heuristic_counts"], entry["symbolic_counts"]
                cand, hcand = entry["candidate_overlap"], entry["heuristic_candidate_overlap"]
                print(
                    f"  classes: heuristic same {heur['same']}/dead {heur['dead']}/lv {heur['last_value']} — "
                    f"symbolic same {symc['same']}/dead {symc['dead']}/lv {symc['last_value']}"
                )
                print(
                    f"  candidates vs profiled: symbolic same {cand['same']['both']}, dead {cand['dead']['both']} "
                    f"(heuristic same {hcand['same']['both']}, dead {hcand['dead']['both']})"
                )
                for depth, bucket in entry["by_loop_depth"].items():
                    reuse = bucket["trip_weighted_reuse"]
                    reuse_text = f", trip-weighted reuse {reuse:.1%}" if reuse is not None else ""
                    print(
                        f"  depth {depth}: {bucket['loads']} load(s), same {bucket['same']}, "
                        f"dead {bucket['dead']}, lv {bucket['last_value']}{reuse_text}"
                    )
        if failures:
            print()
            for line in failures:
                print(f"analyze: {line}")
    if failures and args.strict:
        return 1
    return 0


def _cmd_ir(args: argparse.Namespace) -> int:
    from .analysis.verifier import verify_program
    from .ir import IRError, lower_module, raise_program, roundtrip
    from .testing import GeneratorConfig, generate_case
    from .workloads.suite import make_workload

    names = sorted(WORKLOAD_CLASSES) if args.all else list(args.workload)
    unknown = [name for name in names if name not in WORKLOAD_CLASSES]
    if unknown:
        print(f"ir: unknown workload(s) {', '.join(unknown)}", file=sys.stderr)
        return 2
    if not names and not args.generated:
        print("ir: nothing to do (name workloads, or use --all / --generated N)", file=sys.stderr)
        return 2

    targets = []  # (label, program, memory factory)
    for name in names:
        workload = make_workload(name)
        targets.append((name, workload.program, lambda w=workload: w.memory("ref")))
    for i in range(args.generated):
        case = generate_case(args.seed + i, GeneratorConfig())
        targets.append((f"gen[{case.seed}]", case.program, case.memory))

    failures = 0
    for label, program, memory_factory in targets:
        try:
            module = raise_program(program)
        except IRError as exc:
            print(f"{label}: RAISE FAILED — {exc}")
            failures += 1
            continue
        if args.dump_ssa:
            print(module.render())
        if args.verify:
            lowering, report = roundtrip(program, memory_factory)
            if report.ok:
                identical = len(lowering.program) == len(program) and all(
                    a.render() == b.render() for a, b in zip(program, lowering.program)
                )
                shape = "identical" if identical else f"equivalent ({len(lowering.program)} pcs)"
                lint = [d for d in verify_program(lowering.program) if d.is_error]
                if lint:
                    print(f"{label}: LINT FAILED on lowered program — {len(lint)} error(s)")
                    for diag in lint[:5]:
                        print(f"  {diag.render()}")
                    failures += 1
                    continue
                print(
                    f"{label}: round trip ok — {report.original_committed} committed, {shape}, lint clean"
                )
            else:
                print(f"{label}: ROUND TRIP FAILED — {report.mismatch}")
                failures += 1
                continue
        else:
            lowering = lower_module(module)
            if not args.dump_ssa and not args.dump_asm:
                funcs = module.functions
                phis = sum(len(b.phis) for f in funcs for b in f.blocks)
                print(
                    f"{label}: {len(funcs)} function(s), "
                    f"{sum(len(f.blocks) for f in funcs)} blocks, {phis} phis, "
                    f"{len(program)} -> {len(lowering.program)} pcs"
                )
        if args.dump_asm:
            print(lowering.program.render())
    if failures:
        print(f"ir: {failures} of {len(targets)} target(s) failed", file=sys.stderr)
    return 1 if failures else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json
    import os

    from .testing import GeneratorConfig, run_fuzz

    config = GeneratorConfig(
        segments=args.segments,
        loop_depth=args.loop_depth,
        load_density=args.load_density,
        register_pressure=args.register_pressure,
        branch_mix=args.branch_mix,
        frontend=args.frontend,
    ).validated()

    def progress(done: int, total: int) -> None:
        if not args.json and done % 50 == 0:
            print(f"  {done}/{total} cases", file=sys.stderr)

    journal = None
    if args.out_dir:
        from .runtime import JournalError, RunJournal, journal_path

        os.makedirs(args.out_dir, exist_ok=True)
        run_id = args.run_id or f"fuzz-seed{args.seed}"
        fuzz_config = {
            "kind": "fuzz",
            "seed": args.seed,
            "runs": args.runs,
            "oracles": sorted(args.oracle) if args.oracle else [],
            "shrink": not args.no_shrink,
        }
        path = journal_path(args.out_dir, run_id)
        try:
            if os.path.exists(path):
                journal = RunJournal.open(path)
                journal.verify_config(fuzz_config)
            else:
                journal = RunJournal.create(
                    args.out_dir, run_id, fuzz_config,
                    [f"seed{args.seed + i}" for i in range(args.runs)],
                )
        except JournalError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return 2

    report = run_fuzz(
        seed=args.seed,
        runs=args.runs,
        oracles=args.oracle,
        shrink=not args.no_shrink,
        config=config,
        progress=progress,
        journal=journal,
    )
    if journal is not None:
        journal.close()
        from .runtime import atomic_write_json

        atomic_write_json(os.path.join(args.out_dir, "fuzz-report.json"), report.to_dict())

    if args.out and report.failures:
        os.makedirs(args.out, exist_ok=True)
        for failure in report.failures:
            path = os.path.join(args.out, f"seed{failure.seed}-{failure.oracle}.s")
            with open(path, "w") as handle:
                handle.write(f"; seed {failure.seed} oracle {failure.oracle}\n")
                handle.write(f"; {failure.message}\n")
                handle.write(failure.reproducer + "\n")

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for failure in report.failures:
            print(
                f"FAIL seed {failure.seed} [{failure.oracle}] "
                f"{failure.original_instructions} -> {failure.shrunk_instructions} insts"
            )
            print(f"  {failure.message}")
        state = "ok" if report.ok else f"{len(report.failures)} failure(s)"
        print(
            f"fuzz: {report.checked} case(s) checked, {report.invalid} invalid, "
            f"{len(report.oracles)} oracle(s): {state}"
        )
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import os

    from .bench import (
        BenchConfig,
        compare_benchmarks,
        find_latest_bench,
        load_bench,
        next_bench_path,
        run_benchmarks,
        write_bench,
    )

    if args.quick:
        config = BenchConfig.quick_config()
        if args.workload:
            config.workloads = tuple(args.workload)
    else:
        config = BenchConfig(
            workloads=tuple(args.workload) if args.workload else tuple(WORKLOAD_CLASSES),
            max_instructions=args.max_insts,
            repeats=args.repeats,
        )
    if args.lanes is not None:
        config.lanes = args.lanes
    config.profile_top = max(0, args.profile)
    try:
        config = config.validated()
    except ValueError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2

    def progress(message: str) -> None:
        if not args.json:
            print(f"  {message}", file=sys.stderr)

    root = args.out_dir if args.out_dir else os.getcwd()
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    auto_baseline = args.baseline is None
    baseline_path = args.baseline or find_latest_bench(root)
    payload = run_benchmarks(config, progress=progress)

    comparisons = []
    if baseline_path is not None:
        try:
            baseline = load_bench(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            if not auto_baseline:
                # An explicitly named baseline must exist and parse.
                print(f"bench: cannot load baseline {baseline_path}: {exc}", file=sys.stderr)
                return 2
            # A missing/corrupt *auto-discovered* baseline (e.g. a previous
            # run was SIGKILLed mid-write before atomic writes existed) must
            # not block new measurements: warn and continue uncompared.
            print(f"bench: ignoring unreadable baseline {baseline_path}: {exc}", file=sys.stderr)
            baseline = None
        if baseline is not None:
            comparisons = compare_benchmarks(
                payload, baseline, fail_threshold=args.fail_threshold, warn_threshold=args.warn_threshold
            )
            payload["baseline"] = {
                "path": os.path.basename(baseline_path),
                "comparisons": comparisons,
            }

    out_path = args.out if args.out else (None if args.no_write else next_bench_path(root))
    if out_path is not None:
        write_bench(out_path, payload)

    failed = any(entry["status"] == "fail" for entry in comparisons)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        summary = payload["summary"]
        print(f"funcsim:  reference {summary['reference_minstr_s_geomean']:.2f} Minstr/s, "
              f"fast {summary['fast_minstr_s_geomean']:.2f} Minstr/s "
              f"({summary['fast_speedup_geomean']:.1f}x), "
              f"trace {summary['trace_minstr_s_geomean']:.2f} Minstr/s "
              f"({summary['trace_speedup_geomean']:.1f}x)")
        print(f"engines:  jit {summary['jit_minstr_s_geomean']:.2f} Minstr/s, "
              f"batched {summary['batched_minstr_s_per_lane_geomean']:.2f} M lane-instr/s "
              f"({config.lanes} lanes)")
        print(f"pipeline: reference {summary['pipeline_cycles_per_s_geomean']:,.0f} cycles/s, "
              f"fast {summary['pipeline_fast_cycles_per_s_geomean']:,.0f} cycles/s "
              f"({summary['pipeline_fast_speedup_geomean']:.1f}x)")
        for name, result in payload["results"]["session"].items():
            print(f"session:  {name} cold {result['cold_s'] * 1e3:.1f} ms, "
                  f"warm {result['warm_s'] * 1e6:.0f} us")
        for engine, rows in payload.get("profiles", {}).items():
            print(f"profile [{engine}]:")
            for row in rows:
                print(f"  {row['cumtime_s']:8.4f}s cum  {row['tottime_s']:8.4f}s tot  "
                      f"{row['ncalls']:>9} calls  {row['where']}")
        for entry in comparisons:
            if entry["status"] == "missing":
                print(f"MISSING: {entry['metric']} has no value in "
                      f"{os.path.basename(baseline_path)}; gate arms once a baseline "
                      f"with this series is committed (current {entry['current']:.3g})")
            elif entry["status"] != "ok":
                print(f"{entry['status'].upper()}: {entry['metric']} dropped "
                      f"{entry['drop']:.1%} vs {os.path.basename(baseline_path)} "
                      f"({entry['baseline']:.3g} -> {entry['current']:.3g})")
        if out_path is not None:
            print(f"wrote {os.path.basename(out_path)}")
    return 1 if failed else 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("workloads:")
    for name, cls in WORKLOAD_CLASSES.items():
        print(f"  {name:10s} [{cls.category}]  {cls.description}")
    print("\nconfigurations:")
    for config in CONFIG_NAMES:
        print(f"  {config}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Storageless Value Prediction Using Prior Register Values (ISCA 1999) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_campaign(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--out-dir", metavar="DIR",
            help="journal the run as a crash-safe campaign under DIR (enables --resume)",
        )
        sub_parser.add_argument("--run-id", metavar="ID", help="campaign run id (default: generated)")
        sub_parser.add_argument(
            "--resume", metavar="RUN_ID",
            help="finish an interrupted campaign: restore ok cells from the journal, run the rest",
        )
        sub_parser.add_argument(
            "--workers", type=int, metavar="N",
            help="run the campaign under the fault-tolerant supervisor with N "
            "leased worker processes (work stealing, crash recovery)",
        )
        sub_parser.add_argument(
            "--store", metavar="DIR",
            help="shared content-addressed result store: identical cells are "
            "restored from DIR instead of re-simulated, across campaigns",
        )
        sub_parser.add_argument(
            "--lease", type=float, metavar="SECONDS",
            help="lease duration before a silent worker's cell is stolen "
            "(with --workers; default 30)",
        )

    run_parser = sub.add_parser("run", help="run configurations on one workload")
    run_parser.add_argument("--workload", choices=sorted(WORKLOAD_CLASSES))
    run_parser.add_argument("--config", nargs="+", default=["no_predict", "lvp_all", "drvp_all_dead_lv"])
    run_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for campaign cells (with --out-dir/--resume)"
    )
    _add_campaign(run_parser)
    _add_common(run_parser)
    run_parser.set_defaults(fn=_cmd_run)

    suite_parser = sub.add_parser("suite", help="run configurations across all workloads")
    suite_parser.add_argument("--config", nargs="+", default=["no_predict", "lvp_all", "drvp_all_dead_lv"])
    suite_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for (workload x config) fan-out (1 = serial)"
    )
    _add_campaign(suite_parser)
    _add_common(suite_parser)
    suite_parser.set_defaults(fn=_cmd_suite)

    serve_parser = sub.add_parser(
        "serve", help="campaign service: drain spooled campaign specs through the supervisor"
    )
    serve_parser.add_argument(
        "--spool", required=True, metavar="DIR",
        help="directory watched for <name>.json campaign specs (CampaignSpec.config_dict payloads)",
    )
    serve_parser.add_argument(
        "--out-dir", required=True, metavar="DIR", help="journal + report directory for campaigns"
    )
    serve_parser.add_argument("--workers", type=int, default=2, metavar="N", help="worker pool size")
    serve_parser.add_argument(
        "--store", metavar="DIR", help="shared content-addressed result store directory"
    )
    serve_parser.add_argument(
        "--lease", type=float, default=30.0, metavar="SECONDS", help="worker lease duration"
    )
    serve_parser.add_argument(
        "--poll", type=float, default=2.0, metavar="SECONDS", help="spool scan interval"
    )
    serve_parser.add_argument(
        "--once", action="store_true",
        help="process the current spool (after resuming interrupted campaigns) and exit",
    )
    serve_parser.set_defaults(fn=_cmd_serve)

    metrics_parser = sub.add_parser("metrics", help="run configurations and emit results + metrics JSON")
    metrics_parser.add_argument("--workload", default="m88ksim", choices=sorted(WORKLOAD_CLASSES))
    metrics_parser.add_argument("--config", nargs="+", default=["no_predict", "drvp_all_dead_lv"])
    _add_common(metrics_parser)
    metrics_parser.set_defaults(fn=_cmd_metrics)

    profile_parser = sub.add_parser("profile", help="show a workload's reuse profile")
    profile_parser.add_argument("--workload", required=True, choices=sorted(WORKLOAD_CLASSES))
    _add_common(profile_parser)
    profile_parser.set_defaults(fn=_cmd_profile)

    realloc_parser = sub.add_parser("realloc", help="run the Section 7.3 reallocator")
    realloc_parser.add_argument("--workload", required=True, choices=sorted(WORKLOAD_CLASSES))
    _add_common(realloc_parser)
    realloc_parser.set_defaults(fn=_cmd_realloc)

    lint_parser = sub.add_parser("lint", help="statically verify workload program variants")
    lint_parser.add_argument(
        "workload", nargs="*", metavar="WORKLOAD",
        help="workloads to lint (default: none; use --all for every workload)",
    )
    lint_parser.add_argument("--all", action="store_true", help="lint every registered workload")
    lint_parser.add_argument(
        "--variant", nargs="+", default=["base"], choices=LINT_VARIANTS,
        help="program variants to build and verify (default: base)",
    )
    lint_parser.add_argument("--asm", metavar="FILE", help="lint an assembler text file instead")
    lint_parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    lint_parser.add_argument("--strict", action="store_true", help="treat warnings as errors")
    lint_parser.add_argument("--disable", nargs="+", metavar="RULE", help="rule ids to skip (e.g. RVP004)")
    lint_parser.add_argument("--rules", action="store_true", help="print the rule catalog and exit")
    lint_parser.add_argument(
        "--reuse-report", action="store_true",
        help="compare static reuse-class estimates against the profiled lists",
    )
    lint_parser.add_argument("--max-insts", type=int, default=40_000, help="profiling budget for variant construction")
    lint_parser.add_argument("--threshold", type=float, default=0.8, help="profile predictability threshold")
    lint_parser.add_argument(
        "--max-gap", type=float, default=None, metavar="FRACTION",
        help="with --reuse-report: exit 3 when any workload's |static - profiled| "
        "dynamic-weighted reuse fraction (same/dead/last_value) exceeds FRACTION",
    )
    lint_parser.set_defaults(fn=_cmd_lint)

    analyze_parser = sub.add_parser(
        "analyze", help="abstract-interpretation facts and profile-free RVP candidate selection"
    )
    analyze_parser.add_argument(
        "workload", nargs="*", metavar="WORKLOAD",
        help="workloads to analyze (default: none; use --all for every workload)",
    )
    analyze_parser.add_argument("--all", action="store_true", help="analyze every registered workload")
    analyze_parser.add_argument("--generated", type=int, default=0, metavar="N", help="also analyze N generated programs")
    analyze_parser.add_argument("--seed", type=int, default=0, help="first generator seed for --generated")
    analyze_parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    analyze_parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any program fails to analyze or symbolic candidates fall behind the heuristic",
    )
    analyze_parser.add_argument("--max-insts", type=int, default=40_000, help="profiling budget for the overlap report")
    analyze_parser.add_argument("--threshold", type=float, default=0.8, help="profile predictability threshold")
    analyze_parser.set_defaults(fn=_cmd_analyze)

    from .testing.oracles import ORACLE_FAMILIES

    fuzz_parser = sub.add_parser("fuzz", help="differential fuzzing of the sim/compiler/predictor stack")
    fuzz_parser.add_argument("--seed", type=int, default=0, help="first generator seed (seeds are consecutive)")
    fuzz_parser.add_argument("--runs", type=int, default=100, help="number of generated programs")
    fuzz_parser.add_argument(
        "--oracle", nargs="+", choices=list(ORACLE_FAMILIES), default=None,
        help="oracle families to apply (default: all five)",
    )
    fuzz_parser.add_argument("--no-shrink", action="store_true", help="report failures without minimising them")
    fuzz_parser.add_argument("--json", action="store_true", help="emit the campaign report as JSON")
    fuzz_parser.add_argument("--out", metavar="DIR", help="write shrunk reproducers (.s files) to this directory")
    fuzz_parser.add_argument(
        "--out-dir", metavar="DIR",
        help="journal judged seeds under DIR (re-running the same command resumes at the first unjudged seed)",
    )
    fuzz_parser.add_argument("--run-id", metavar="ID", help="fuzz journal run id (default: fuzz-seed<seed>)")
    fuzz_parser.add_argument("--segments", type=int, default=4, help="generator: code segments per program")
    fuzz_parser.add_argument("--loop-depth", type=int, default=2, help="generator: maximum loop nesting")
    fuzz_parser.add_argument("--load-density", type=float, default=0.25, help="generator: fraction of loads")
    fuzz_parser.add_argument("--register-pressure", type=int, default=8, help="generator: working registers")
    fuzz_parser.add_argument("--branch-mix", type=float, default=0.4, help="generator: branchy-segment fraction")
    fuzz_parser.add_argument(
        "--frontend", choices=("flat", "ir"), default="flat",
        help="generator frontend: flat register-level builder, or IR temporaries through the SSA mid-end",
    )
    fuzz_parser.set_defaults(fn=_cmd_fuzz)

    ir_parser = sub.add_parser("ir", help="raise, inspect and round-trip programs through the SSA mid-end")
    ir_parser.add_argument(
        "workload", nargs="*", metavar="WORKLOAD",
        help="workloads to process (default: none; use --all for every workload)",
    )
    ir_parser.add_argument("--all", action="store_true", help="process every registered workload")
    ir_parser.add_argument("--dump-ssa", action="store_true", help="print the raised SSA module")
    ir_parser.add_argument("--dump-asm", action="store_true", help="print the lowered flat program")
    ir_parser.add_argument(
        "--verify", action="store_true",
        help="round-trip each program (raise -> lower) and check trace equivalence",
    )
    ir_parser.add_argument(
        "--generated", type=int, default=0, metavar="N",
        help="also process N generator programs (seeds SEED..SEED+N-1)",
    )
    ir_parser.add_argument("--seed", type=int, default=0, help="first generator seed for --generated")
    ir_parser.set_defaults(fn=_cmd_ir)

    bench_parser = sub.add_parser("bench", help="benchmark execution-core throughput and track regressions")
    bench_parser.add_argument(
        "--workload", nargs="+", choices=sorted(WORKLOAD_CLASSES), help="workloads to time (default: all nine)"
    )
    bench_parser.add_argument(
        "--quick", action="store_true", help="fast smoke mode: m88ksim + mgrid, 20k insts, 2 repeats"
    )
    bench_parser.add_argument("--max-insts", type=int, default=40_000, help="committed-instruction budget per run")
    bench_parser.add_argument("--repeats", type=int, default=3, help="timed repetitions per section (best kept)")
    bench_parser.add_argument(
        "--lanes", type=int, default=None, help="batch width for the batched-engine series (default 32)"
    )
    bench_parser.add_argument("--json", action="store_true", help="emit the full payload as JSON on stdout")
    bench_parser.add_argument("--out", metavar="FILE", help="write the payload to FILE instead of BENCH_<n>.json")
    bench_parser.add_argument(
        "--out-dir", metavar="DIR",
        help="directory for BENCH_<n>.json files and baseline discovery (default: cwd)",
    )
    bench_parser.add_argument("--no-write", action="store_true", help="do not write a BENCH file")
    bench_parser.add_argument(
        "--baseline", metavar="FILE",
        help="compare against this BENCH file (default: highest-numbered BENCH_<n>.json in cwd)",
    )
    bench_parser.add_argument(
        "--fail-threshold", type=float, default=0.30,
        help="fail (exit 1) when a summary throughput metric drops more than this fraction",
    )
    bench_parser.add_argument(
        "--warn-threshold", type=float, default=0.10, help="warn when a metric drops more than this fraction"
    )
    bench_parser.add_argument(
        "--profile", type=int, nargs="?", const=15, default=0, metavar="N",
        help="cProfile each benched engine (funcsim reference/decoded, pipeline "
        "reference/fast) on the first workload and report the top N cumulative "
        "hot spots (default N=15)",
    )
    bench_parser.set_defaults(fn=_cmd_bench)

    list_parser = sub.add_parser("list", help="list workloads and configurations")
    list_parser.set_defaults(fn=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Exit codes: 0 success, 1 lint errors found, 2 usage/internal error.

    (argparse usage failures raise ``SystemExit(2)`` on their own.)
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        return 0
    except Exception as exc:
        print(f"repro: internal error: {exc!r}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
