"""Compiler back end: liveness, webs, interference, colouring, reallocation, marking."""

from .coloring import ColorNode, ColoringResult, color_graph
from .insertion import insert_after
from .interference import build_interference, interferes
from .liveness import LivenessInfo, compute_liveness, defs_and_uses
from .marking import MARKING_LEVELS, mark_static_rvp, marked_pcs
from .realloc import ReallocReport, reallocate
from .stride_pass import StridePassReport, apply_stride_pass
from .webs import Web, WebAnalysis, build_webs

__all__ = [
    "ColorNode",
    "ColoringResult",
    "color_graph",
    "insert_after",
    "StridePassReport",
    "apply_stride_pass",
    "build_interference",
    "interferes",
    "LivenessInfo",
    "compute_liveness",
    "defs_and_uses",
    "MARKING_LEVELS",
    "mark_static_rvp",
    "marked_pcs",
    "ReallocReport",
    "reallocate",
    "Web",
    "WebAnalysis",
    "build_webs",
]
