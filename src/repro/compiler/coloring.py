"""Chaitin-Briggs graph colouring (paper reference [2]).

The colouring problem here never spills: the original program *is* a valid
colouring, and the reallocator only adds constraints (coalesce groups and
loop-exclusivity edges).  When the augmented graph cannot be coloured, the
caller removes reuse constraints and retries — that pruning loop is the
paper's Section 7.3 procedure, so :func:`color_graph` reports the uncoloured
nodes instead of spilling.

Nodes are *groups* (coalesced web sets).  Fixed groups are precoloured with
their original register; free groups may take any register from their class
pool, with a preference for their original register so that an unconstrained
colouring reproduces the input program exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.diagnostics import Diagnostic, Severity
from ..isa.registers import ALLOCATABLE_FP, ALLOCATABLE_INT, Reg

_POOLS: Dict[str, Tuple[Reg, ...]] = {"int": ALLOCATABLE_INT, "fp": ALLOCATABLE_FP}


@dataclass
class ColorNode:
    """One colouring node (a coalesce group of webs)."""

    node_id: int
    kind: str  # 'int' or 'fp'
    preferred: Reg  # original register, used as tie-break
    fixed: Optional[Reg] = None  # precoloured register, if any


@dataclass
class ColoringResult:
    assignment: Dict[int, Reg]
    uncolored: Set[int] = field(default_factory=set)
    #: RVP009 records: one per uncolourable node / precolour conflict.
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.uncolored and not self.diagnostics


def _spill(proc_name: str, message: str) -> Diagnostic:
    return Diagnostic(rule="RVP009", severity=Severity.ERROR, pc=None, procedure=proc_name, message=message)


def color_graph(
    nodes: Sequence[ColorNode],
    adjacency: Dict[int, Set[int]],
    proc_name: str = "-",
) -> ColoringResult:
    """Colour the graph; precoloured nodes keep their colour.

    Uses optimistic Chaitin-Briggs: simplify below-degree nodes, push the
    rest optimistically, and report any node that finds no free colour as an
    ``RVP009`` diagnostic — a node with zero free colours is *rejected*, not
    silently assigned a clashing register.  Two precoloured neighbours that
    already share a register are likewise reported: the input graph is
    uncolourable as posed.
    """
    by_id = {node.node_id: node for node in nodes}
    assignment: Dict[int, Reg] = {}
    diagnostics: List[Diagnostic] = []
    uncolored: Set[int] = set()
    for node in nodes:
        if node.fixed is not None:
            assignment[node.node_id] = node.fixed

    # Precolour sanity: fixed neighbours sharing a register cannot be fixed
    # by any colouring of the free nodes.
    for node in nodes:
        if node.fixed is None:
            continue
        for other_id in adjacency.get(node.node_id, ()):
            other = by_id.get(other_id)
            if other is None or other.fixed is None or other.node_id <= node.node_id:
                continue
            if other.fixed == node.fixed and other.kind == node.kind:
                uncolored.update((node.node_id, other.node_id))
                diagnostics.append(
                    _spill(
                        proc_name,
                        f"precoloured groups {node.node_id} and {other.node_id} "
                        f"interfere but are both pinned to {node.fixed.name}",
                    )
                )

    free_ids = [node.node_id for node in nodes if node.fixed is None]
    degree = {nid: len([n for n in adjacency.get(nid, ()) if n in by_id]) for nid in free_ids}
    remaining = set(free_ids)
    stack: List[int] = []

    def k_of(nid: int) -> int:
        return len(_POOLS[by_id[nid].kind])

    while remaining:
        candidate = None
        for nid in sorted(remaining):
            live_degree = sum(1 for n in adjacency.get(nid, ()) if n in remaining or by_id.get(n, ColorNode(-1, "", None, None)).fixed is not None)
            if live_degree < k_of(nid):
                candidate = nid
                break
        if candidate is None:
            # Optimistic push: highest degree first.
            candidate = max(remaining, key=lambda n: degree[n])
        remaining.discard(candidate)
        stack.append(candidate)

    while stack:
        nid = stack.pop()
        node = by_id[nid]
        taken = {assignment[n] for n in adjacency.get(nid, ()) if n in assignment}
        pool = _POOLS[node.kind]
        if node.preferred is not None and node.preferred not in taken and node.preferred in pool:
            assignment[nid] = node.preferred
            continue
        choice = next((reg for reg in pool if reg not in taken), None)
        if choice is None:
            uncolored.add(nid)
            diagnostics.append(
                _spill(
                    proc_name,
                    f"group {nid} ({node.kind}, preferred "
                    f"{node.preferred.name if node.preferred is not None else '-'}) "
                    f"found no free register: all {len(pool)} taken by neighbours",
                )
            )
        else:
            assignment[nid] = choice
    return ColoringResult(assignment=assignment, uncolored=uncolored, diagnostics=diagnostics)
