"""Per-procedure liveness dataflow.

Definitions and uses follow the calling convention the paper assumes in
Section 7.3: *all non-volatile registers are live at procedure entrance and
exit, and each procedure call uses all argument registers*.  Concretely:

* ``jsr``  — explicitly defines its link register; implicitly *uses* the
  argument registers (int and fp) and the stack pointer, and implicitly
  *defines* every volatile register (the callee may clobber them).
* ``ret`` / ``jmp`` / ``halt`` (procedure exits) — implicitly use every
  non-volatile register plus the stack pointer.
* procedure entry — implicitly defines every register (arguments,
  caller-saved garbage, callee-saved values all "arrive" here).

Implicit defs/uses are what pins boundary-crossing webs to their original
registers during reallocation.

Liveness itself is an instance of the shared CFG dataflow engine
(:mod:`repro.analysis.dataflow`): a backward *may* (union) problem with
``gen = uses`` and ``kill = defs`` per instruction.  Exit live-outs are the
empty boundary set — the convention's exit uses are modelled as uses *of the
exit instruction*, so the dataflow boundary itself carries nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from ..analysis.dataflow import BACKWARD, UNION, DataflowProblem, solve
from ..isa.instructions import Instruction
from ..isa.opcodes import OpKind
from ..isa.program import Procedure, Program
from ..isa.registers import (
    ARG_REGS,
    CALLEE_SAVED_FP,
    CALLEE_SAVED_INT,
    F,
    FP_ARG_REGS,
    R,
    STACK_POINTER,
    Reg,
    is_volatile,
)

_ALL_REGS: Tuple[Reg, ...] = tuple(r for r in R if not r.is_zero) + tuple(f for f in F if not f.is_zero)
_VOLATILES: Tuple[Reg, ...] = tuple(r for r in _ALL_REGS if is_volatile(r))
_NONVOLATILES: Tuple[Reg, ...] = tuple(r for r in _ALL_REGS if not is_volatile(r))
_CALL_USES: FrozenSet[Reg] = frozenset(ARG_REGS) | frozenset(FP_ARG_REGS) | {STACK_POINTER}
_EXIT_USES: FrozenSet[Reg] = frozenset(_NONVOLATILES) | {STACK_POINTER}


def explicit_defs(inst: Instruction) -> Tuple[Reg, ...]:
    dst = inst.writes
    return (dst,) if dst is not None else ()


def explicit_uses(inst: Instruction) -> Tuple[Reg, ...]:
    return tuple(r for r in inst.reads if not r.is_zero)


def defs_and_uses(inst: Instruction) -> Tuple[Set[Reg], Set[Reg]]:
    """(defs, uses) including calling-convention implicit effects."""
    defs = set(explicit_defs(inst))
    uses = set(explicit_uses(inst))
    if inst.op.kind is OpKind.CALL:
        uses |= _CALL_USES
        defs |= set(_VOLATILES)
    elif inst.op.kind in (OpKind.INDIRECT, OpKind.HALT):
        uses |= _EXIT_USES
    return defs, uses


class LivenessProblem(DataflowProblem):
    """Backward may-liveness: gen = uses, kill = defs, empty exit boundary."""

    direction = BACKWARD
    meet = UNION

    def __init__(self, program: Program, proc: Procedure) -> None:
        self._effects: Dict[int, Tuple[Set[Reg], Set[Reg]]] = {
            pc: defs_and_uses(program[pc]) for pc in range(proc.start, proc.end)
        }

    def gen(self, pc: int) -> Set[Reg]:
        return self._effects[pc][1]

    def kill(self, pc: int) -> Set[Reg]:
        return self._effects[pc][0]


@dataclass
class LivenessInfo:
    """Liveness facts for one procedure, indexed by pc."""

    proc: Procedure
    live_in: Dict[int, FrozenSet[Reg]]
    live_out: Dict[int, FrozenSet[Reg]]

    def is_live_in(self, pc: int, reg: Reg) -> bool:
        return reg in self.live_in[pc]

    def is_live_out(self, pc: int, reg: Reg) -> bool:
        return reg in self.live_out[pc]


def compute_liveness(program: Program, proc: Procedure) -> LivenessInfo:
    """Backward may-liveness over the procedure CFG, to instruction grain."""
    result = solve(program, proc, LivenessProblem(program, proc))
    return LivenessInfo(proc=proc, live_in=result.in_facts, live_out=result.out_facts)
