"""Per-procedure liveness dataflow.

Per-instruction definitions and uses — including the Section 7.3
calling-convention implicit effects — come from the canonical
:mod:`repro.analysis.effects` module; this module layers the backward
dataflow on top of them.  Implicit defs/uses are what pins
boundary-crossing webs to their original registers during reallocation.

Liveness itself is an instance of the shared CFG dataflow engine
(:mod:`repro.analysis.dataflow`): a backward *may* (union) problem with
``gen = uses`` and ``kill = defs`` per instruction.  Exit live-outs are the
empty boundary set — the convention's exit uses are modelled as uses *of the
exit instruction*, so the dataflow boundary itself carries nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from ..analysis.dataflow import BACKWARD, UNION, DataflowProblem, solve
from ..analysis.effects import (
    ALL_REGS as _ALL_REGS,
    CALL_USES as _CALL_USES,
    EXIT_USES as _EXIT_USES,
    NONVOLATILES as _NONVOLATILES,
    VOLATILES as _VOLATILES,
    defs_and_uses,
    explicit_defs,
    explicit_uses,
)
from ..isa.program import Procedure, Program
from ..isa.registers import Reg


class LivenessProblem(DataflowProblem):
    """Backward may-liveness: gen = uses, kill = defs, empty exit boundary."""

    direction = BACKWARD
    meet = UNION

    def __init__(self, program: Program, proc: Procedure) -> None:
        self._effects: Dict[int, Tuple[Set[Reg], Set[Reg]]] = {
            pc: defs_and_uses(program[pc]) for pc in range(proc.start, proc.end)
        }

    def gen(self, pc: int) -> Set[Reg]:
        return self._effects[pc][1]

    def kill(self, pc: int) -> Set[Reg]:
        return self._effects[pc][0]


@dataclass
class LivenessInfo:
    """Liveness facts for one procedure, indexed by pc."""

    proc: Procedure
    live_in: Dict[int, FrozenSet[Reg]]
    live_out: Dict[int, FrozenSet[Reg]]

    def is_live_in(self, pc: int, reg: Reg) -> bool:
        return reg in self.live_in[pc]

    def is_live_out(self, pc: int, reg: Reg) -> bool:
        return reg in self.live_out[pc]


def compute_liveness(program: Program, proc: Procedure) -> LivenessInfo:
    """Backward may-liveness over the procedure CFG, to instruction grain."""
    result = solve(program, proc, LivenessProblem(program, proc))
    return LivenessInfo(proc=proc, live_in=result.in_facts, live_out=result.out_facts)
