"""Per-procedure liveness dataflow.

Definitions and uses follow the calling convention the paper assumes in
Section 7.3: *all non-volatile registers are live at procedure entrance and
exit, and each procedure call uses all argument registers*.  Concretely:

* ``jsr``  — explicitly defines its link register; implicitly *uses* the
  argument registers (int and fp) and the stack pointer, and implicitly
  *defines* every volatile register (the callee may clobber them).
* ``ret`` / ``jmp`` / ``halt`` (procedure exits) — implicitly use every
  non-volatile register plus the stack pointer.
* procedure entry — implicitly defines every register (arguments,
  caller-saved garbage, callee-saved values all "arrive" here).

Implicit defs/uses are what pins boundary-crossing webs to their original
registers during reallocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from ..isa.instructions import Instruction
from ..isa.opcodes import OpKind
from ..isa.program import Procedure, Program
from ..isa.registers import (
    ARG_REGS,
    CALLEE_SAVED_FP,
    CALLEE_SAVED_INT,
    F,
    FP_ARG_REGS,
    R,
    STACK_POINTER,
    Reg,
    is_volatile,
)

_ALL_REGS: Tuple[Reg, ...] = tuple(r for r in R if not r.is_zero) + tuple(f for f in F if not f.is_zero)
_VOLATILES: Tuple[Reg, ...] = tuple(r for r in _ALL_REGS if is_volatile(r))
_NONVOLATILES: Tuple[Reg, ...] = tuple(r for r in _ALL_REGS if not is_volatile(r))
_CALL_USES: FrozenSet[Reg] = frozenset(ARG_REGS) | frozenset(FP_ARG_REGS) | {STACK_POINTER}
_EXIT_USES: FrozenSet[Reg] = frozenset(_NONVOLATILES) | {STACK_POINTER}


def explicit_defs(inst: Instruction) -> Tuple[Reg, ...]:
    dst = inst.writes
    return (dst,) if dst is not None else ()


def explicit_uses(inst: Instruction) -> Tuple[Reg, ...]:
    return tuple(r for r in inst.reads if not r.is_zero)


def defs_and_uses(inst: Instruction) -> Tuple[Set[Reg], Set[Reg]]:
    """(defs, uses) including calling-convention implicit effects."""
    defs = set(explicit_defs(inst))
    uses = set(explicit_uses(inst))
    if inst.op.kind is OpKind.CALL:
        uses |= _CALL_USES
        defs |= set(_VOLATILES)
    elif inst.op.kind in (OpKind.INDIRECT, OpKind.HALT):
        uses |= _EXIT_USES
    return defs, uses


@dataclass
class LivenessInfo:
    """Liveness facts for one procedure, indexed by pc."""

    proc: Procedure
    live_in: Dict[int, FrozenSet[Reg]]
    live_out: Dict[int, FrozenSet[Reg]]

    def is_live_in(self, pc: int, reg: Reg) -> bool:
        return reg in self.live_in[pc]

    def is_live_out(self, pc: int, reg: Reg) -> bool:
        return reg in self.live_out[pc]


def compute_liveness(program: Program, proc: Procedure) -> LivenessInfo:
    """Backward may-liveness over the procedure CFG, to instruction grain."""
    blocks = program.basic_blocks(proc)
    by_start = {b.start: b for b in blocks}

    # Per-block gen (upward-exposed uses) and kill (defs).
    gen: Dict[int, Set[Reg]] = {}
    kill: Dict[int, Set[Reg]] = {}
    for block in blocks:
        g: Set[Reg] = set()
        k: Set[Reg] = set()
        for pc in block.pcs():
            defs, uses = defs_and_uses(program[pc])
            g |= uses - k
            k |= defs
        gen[block.start] = g
        kill[block.start] = k

    # Blocks with no successors are procedure exits; their live-out is the
    # convention's exit set (already modelled as uses of the exit instruction,
    # so the boundary set here is empty — the exit instruction generates it).
    block_live_in: Dict[int, Set[Reg]] = {b.start: set() for b in blocks}
    block_live_out: Dict[int, Set[Reg]] = {b.start: set() for b in blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out: Set[Reg] = set()
            for succ in block.successors:
                out |= block_live_in[succ]
            new_in = gen[block.start] | (out - kill[block.start])
            if out != block_live_out[block.start] or new_in != block_live_in[block.start]:
                block_live_out[block.start] = out
                block_live_in[block.start] = new_in
                changed = True

    # Instruction-grain facts by walking each block backward once.
    live_in: Dict[int, FrozenSet[Reg]] = {}
    live_out: Dict[int, FrozenSet[Reg]] = {}
    for block in blocks:
        live: Set[Reg] = set(block_live_out[block.start])
        for pc in reversed(list(block.pcs())):
            live_out[pc] = frozenset(live)
            defs, uses = defs_and_uses(program[pc])
            live = (live - defs) | uses
            live_in[pc] = frozenset(live)
    return LivenessInfo(proc=proc, live_in=live_in, live_out=live_out)
