"""Webs (du-chain unions): the allocation units of the Chaitin allocator.

A *web* is the maximal set of definitions and uses of one architectural
register connected through reaching definitions — the unit that can be
renamed to a different register without changing program semantics.  The
Section 7.3 reallocator merges webs ("combine the live ranges") to realise
dead-register reuse, so we need real webs, not whole-register live ranges.

Implicit definitions (procedure entry, call clobbers) and implicit uses
(call argument registers, procedure-exit non-volatiles) participate in web
construction and mark their webs *fixed*: those values cross a convention
boundary and must keep their original register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.program import Procedure, Program
from ..isa.registers import ALLOCATABLE_FP, ALLOCATABLE_INT, Reg
from .liveness import LivenessInfo, defs_and_uses, explicit_defs, explicit_uses

_ALLOCATABLE = set(ALLOCATABLE_INT) | set(ALLOCATABLE_FP)


@dataclass
class Web:
    """One allocation unit."""

    index: int
    reg: Reg
    def_pcs: Set[int] = field(default_factory=set)  # explicit defs
    use_sites: Set[Tuple[int, str]] = field(default_factory=set)  # (pc, slot)
    live_pcs: Set[int] = field(default_factory=set)
    fixed: bool = False  # must keep its original register

    @property
    def kind(self) -> str:
        return self.reg.kind


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def add(self, item: int) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


@dataclass
class WebAnalysis:
    """Webs of one procedure plus operand resolution maps."""

    proc: Procedure
    webs: List[Web]
    #: (pc, slot) -> web index, for slots 'src1'/'src2'; dst slot is 'dst'.
    slot_web: Dict[Tuple[int, str], int]

    def web_of_def(self, pc: int) -> Optional[Web]:
        index = self.slot_web.get((pc, "dst"))
        return self.webs[index] if index is not None else None

    def web_of_use(self, pc: int, slot: str) -> Optional[Web]:
        index = self.slot_web.get((pc, slot))
        return self.webs[index] if index is not None else None


def build_webs(program: Program, proc: Procedure, liveness: LivenessInfo) -> WebAnalysis:
    """Reaching-definitions web construction for one procedure."""
    # --- enumerate definitions -------------------------------------------
    # def id -> (pc or None for entry, reg, implicit?)
    defs: List[Tuple[Optional[int], Reg, bool]] = []

    def new_def(pc: Optional[int], reg: Reg, implicit: bool) -> int:
        defs.append((pc, reg, implicit))
        return len(defs) - 1

    entry_def: Dict[Reg, int] = {}

    def entry_def_of(reg: Reg) -> int:
        if reg not in entry_def:
            entry_def[reg] = new_def(None, reg, True)
        return entry_def[reg]

    # Pre-create explicit/implicit defs per pc so ids are stable.
    code_defs: Dict[int, Dict[Reg, Tuple[int, bool]]] = {}
    for pc in range(proc.start, proc.end):
        inst = program[pc]
        all_defs, all_uses = defs_and_uses(inst)
        explicit = set(explicit_defs(inst))
        per_pc: Dict[Reg, Tuple[int, bool]] = {}
        for reg in all_defs:
            implicit = reg not in explicit
            per_pc[reg] = (new_def(pc, reg, implicit), implicit)
        code_defs[pc] = per_pc
        # Eagerly materialise an entry def for every register read anywhere:
        # at a join where one path defines the register and another reaches it
        # straight from procedure entry (e.g. a loop body read on the first
        # iteration), the entry contribution must survive the dataflow merge
        # so the use's web is pinned, not just the in-loop definition's.
        for reg in all_uses:
            if not reg.is_zero:
                entry_def_of(reg)

    # --- reaching definitions dataflow (block granularity) ---------------
    blocks = program.basic_blocks(proc)
    preds: Dict[int, List[int]] = {b.start: [] for b in blocks}
    for block in blocks:
        for succ in block.successors:
            preds[succ].append(block.start)

    def transfer(state: Dict[Reg, Set[int]], pc: int) -> None:
        for reg, (def_id, _implicit) in code_defs[pc].items():
            state[reg] = {def_id}

    block_in: Dict[int, Dict[Reg, Set[int]]] = {}
    block_out: Dict[int, Dict[Reg, Set[int]]] = {}
    for block in blocks:
        block_in[block.start] = {}
        block_out[block.start] = {}
    # Entry block starts with entry defs for every register ever referenced.
    changed = True
    while changed:
        changed = False
        for block in blocks:
            state: Dict[Reg, Set[int]] = {}
            if block.start == proc.start:
                for reg, def_id in entry_def.items():
                    state[reg] = {def_id}
            for p in preds[block.start]:
                for reg, ids in block_out[p].items():
                    state.setdefault(reg, set()).update(ids)
            if state != block_in[block.start]:
                block_in[block.start] = {r: set(s) for r, s in state.items()}
                changed = True
            work = {r: set(s) for r, s in block_in[block.start].items()}
            for pc in block.pcs():
                transfer(work, pc)
            if work != block_out[block.start]:
                block_out[block.start] = work
                changed = True

    def reaching(state: Dict[Reg, Set[int]], reg: Reg, at_entry_block: bool) -> Set[int]:
        ids = state.get(reg)
        if not ids:
            # No def on some path: the value comes from procedure entry.
            return {entry_def_of(reg)}
        return ids

    # --- union defs through uses ------------------------------------------
    uf = _UnionFind()
    for def_id in range(len(defs)):
        uf.add(def_id)
    # entry defs may be created during use resolution; add lazily via helper
    use_webs: Dict[Tuple[int, str], Set[int]] = {}
    implicit_use_defs: Set[int] = set()

    for block in blocks:
        state = {r: set(s) for r, s in block_in[block.start].items()}
        at_entry = block.start == proc.start
        for pc in block.pcs():
            inst = program[pc]
            _, all_uses = defs_and_uses(inst)
            explicit = list(explicit_uses(inst))
            slots: List[Tuple[str, Reg]] = []
            if inst.src1 is not None and not inst.src1.is_zero:
                slots.append(("src1", inst.src1))
            if inst.src2 is not None and not inst.src2.is_zero:
                slots.append(("src2", inst.src2))
            for slot, reg in slots:
                ids = reaching(state, reg, at_entry)
                for def_id in ids:
                    uf.add(def_id)
                use_webs[(pc, slot)] = set(ids)
                first = next(iter(ids))
                for other in ids:
                    uf.union(first, other)
            for reg in all_uses - set(r for _, r in slots):
                # Implicit use (call args, exit non-volatiles): union and pin.
                ids = reaching(state, reg, at_entry)
                for def_id in ids:
                    uf.add(def_id)
                    implicit_use_defs.add(def_id)
                first = next(iter(ids))
                for other in ids:
                    uf.union(first, other)
            transfer(state, pc)

    # --- materialise webs ---------------------------------------------------
    root_to_web: Dict[int, int] = {}
    webs: List[Web] = []
    for def_id, (pc, reg, implicit) in enumerate(defs):
        root = uf.find(def_id)
        if root not in root_to_web:
            root_to_web[root] = len(webs)
            webs.append(Web(index=len(webs), reg=reg))
        web = webs[root_to_web[root]]
        if pc is not None and not implicit:
            web.def_pcs.add(pc)
        if implicit or pc is None:
            web.fixed = True
    for def_id in implicit_use_defs:
        webs[root_to_web[uf.find(def_id)]].fixed = True
    for web in webs:
        if web.reg not in _ALLOCATABLE:
            web.fixed = True

    slot_web: Dict[Tuple[int, str], int] = {}
    for (pc, slot), ids in use_webs.items():
        web = webs[root_to_web[uf.find(next(iter(ids)))]]
        slot_web[(pc, slot)] = web.index
        web.use_sites.add((pc, slot))
    for pc in range(proc.start, proc.end):
        inst = program[pc]
        dst = inst.writes
        if dst is None:
            continue
        def_id, implicit = code_defs[pc][dst]
        web = webs[root_to_web[uf.find(def_id)]]
        if not implicit:
            slot_web[(pc, "dst")] = web.index

    # --- live ranges ---------------------------------------------------------
    # A web is live at pc if its register is live-in and one of the web's defs
    # reaches pc.  Reuse the block dataflow to find the reaching web per pc.
    for block in blocks:
        state = {r: set(s) for r, s in block_in[block.start].items()}
        for pc in block.pcs():
            live = liveness.live_in[pc]
            for reg in live:
                ids = state.get(reg)
                if not ids:
                    if reg in entry_def:
                        ids = {entry_def[reg]}
                    else:
                        continue
                for def_id in ids:
                    webs[root_to_web[uf.find(def_id)]].live_pcs.add(pc)
            transfer(state, pc)
    # Include def points so two defs at the same point conflict.
    for web in webs:
        web.live_pcs |= web.def_pcs

    return WebAnalysis(proc=proc, webs=webs, slot_web=slot_web)
