"""Static RVP marking (paper Section 4.1).

Static register-value prediction identifies candidate loads with new opcodes:
``ld`` becomes ``rvp_ld`` (and ``fld`` becomes ``rvp_fld``) for loads the
profile says are predictable at the chosen threshold.  The marking level
mirrors the Figure 3 variants:

=================  ====================================================
level              marked loads
=================  ====================================================
``same``           same-register reuse already present (srvp_same)
``dead``           + dead-register correlation (srvp_dead)
``live``           + live-register correlation (srvp_live)
``live_lv``        + last-value reallocation (srvp_live_lv)
=================  ====================================================

Marking does not change the prediction *source*; that is carried separately
by the profile lists (see :class:`~repro.profiling.lists.ProfileLists`),
matching the paper's simulation method: "if an instruction is identified in
our dead list as exhibiting value reuse with another register, we track
reuse of the value in the other register for that instruction".
"""

from __future__ import annotations

from typing import Optional, Set

from ..isa.instructions import Instruction
from ..isa.program import Program
from ..profiling.lists import ProfileLists

MARKING_LEVELS = ("same", "dead", "live", "live_lv")


def marked_pcs(program: Program, lists: ProfileLists, level: str) -> Set[int]:
    """The set of load pcs that get the rvp opcode at ``level``."""
    if level not in MARKING_LEVELS:
        raise ValueError(f"unknown marking level {level!r}; choose from {MARKING_LEVELS}")
    use_dead = level in ("dead", "live", "live_lv")
    use_live = level in ("live", "live_lv")
    use_lv = level == "live_lv"
    candidates = lists.candidate_pcs(use_dead=use_dead, use_live=use_live, use_lv=use_lv)
    return {pc for pc in candidates if 0 <= pc < len(program) and program[pc].is_load}


def mark_static_rvp(
    program: Program,
    lists: ProfileLists,
    level: str = "same",
    verify: Optional[bool] = None,
) -> Program:
    """Return a program with the selected loads swapped to rvp opcodes.

    Postcondition (on by default, ``verify=False`` or ``REPRO_VERIFY_PASSES=0``
    to skip): the marked program passes the verifier — in particular RVP006,
    every rvp opcode sits on a load whose destination can hold a prior value.
    """
    pcs = marked_pcs(program, lists, level)

    def mark(inst: Instruction) -> Instruction:
        if inst.pc in pcs:
            return inst.as_rvp_marked()
        return inst

    marked = program.rewrite(mark, name=f"{program.name}+srvp_{level}")

    from ..analysis.verifier import check_program, verification_enabled

    if verification_enabled(verify):
        check_program(marked, source=f"mark_static_rvp[{level}]({program.name})", lists=lists, baseline=program)
    return marked
