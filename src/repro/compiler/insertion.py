"""Instruction insertion with label/procedure remapping.

The marking and reallocation passes are 1:1 rewrites; the Section 3
"Et Cetera" transformations (stride adds, correlation moves) *insert*
instructions.  Because :class:`~repro.isa.program.Program` stores branch
targets symbolically (label names, re-resolved at construction), insertion
reduces to rebuilding the instruction list and shifting label/procedure
boundaries.

Convention: ``insert_after[pc]`` instructions are placed immediately after
the instruction at ``pc``.  Labels bound to ``pc + 1`` keep pointing at the
original ``pc + 1`` instruction — control transfers skip the inserted code,
which is safe for this module's intended use (shadow-register updates with
no architectural consumers) and conservative for anything else.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instructions import Instruction
from ..isa.program import Procedure, Program

#: Test-only mutation switch: when True, the first inserted instruction is
#: silently dropped.  Exists so the differential oracles in
#: :mod:`repro.testing.oracles` can prove they detect a broken insertion pass
#: (tests/test_testing_oracles.py flips it under monkeypatch).  Never set this
#: in production code.
_TEST_DROP_FIRST_INSERTED = False


def insert_after(
    program: Program,
    insertions: Dict[int, Sequence[Instruction]],
    name: str = None,
    verify: Optional[bool] = None,
) -> Tuple[Program, Dict[int, int]]:
    """Insert instructions after the given pcs.

    Returns ``(new_program, pc_map)`` where ``pc_map`` maps every original pc
    to its new pc (inserted instructions have no entry).

    Postcondition (on by default, ``verify=False`` or ``REPRO_VERIFY_PASSES=0``
    to skip): the rebuilt program passes the verifier — label/procedure
    shifting bugs show up as RVP005 cross-boundary targets or RVP004
    unreachable blocks.
    """
    for pc in insertions:
        if not 0 <= pc < len(program):
            raise ValueError(f"insertion point {pc} out of range")

    new_insts: List[Instruction] = []
    pc_map: Dict[int, int] = {}
    dropped = not _TEST_DROP_FIRST_INSERTED  # mutation: lose the first insert
    for inst in program:
        pc_map[inst.pc] = len(new_insts)
        new_insts.append(inst)
        for extra in insertions.get(inst.pc, ()):
            if not dropped:
                dropped = True
                continue
            new_insts.append(extra)

    def shifted(position: int) -> int:
        """New index for an original *boundary* position (0..len)."""
        if position >= len(program):
            return len(new_insts)
        return pc_map[position]

    labels = {label: shifted(pc) for label, pc in program.labels.items()}
    procedures = [Procedure(p.name, shifted(p.start), shifted(p.end)) for p in program.procedures]
    source_map = None
    if program.source_map is not None:
        # Carried instructions keep their provenance; inserted ones inherit
        # the location of the instruction they follow.
        source_map = {pc_map[pc]: loc for pc, loc in program.source_map.items()}
        for old_pc in insertions:
            loc = program.source_map.get(old_pc)
            if loc is None:
                continue
            for new_pc in range(pc_map[old_pc] + 1, shifted(old_pc + 1)):
                source_map[new_pc] = replace(loc, origin_pc=None)
    new_program = Program(new_insts, labels, name or f"{program.name}+ins", procedures, source_map=source_map)

    from ..analysis.verifier import check_program, verification_enabled

    if verification_enabled(verify):
        check_program(new_program, source=f"insert_after({program.name})", baseline=program, pc_map=pc_map)
    return new_program, pc_map
