"""Interference graphs over webs (paper Section 7.3).

Two webs interfere when they are simultaneously live somewhere (same
register class only — the int and fp files are separate colouring problems).
The reallocator later *augments* this graph: profile-suggested live-range
merges become coalesce groups, and last-value reuses add exclusivity edges
against every definition in the enclosing loop.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .webs import Web


def build_interference(webs: List[Web]) -> Dict[int, Set[int]]:
    """Adjacency sets keyed by web index."""
    adjacency: Dict[int, Set[int]] = {web.index: set() for web in webs}
    # Index webs by pc for the sparse overlap test.
    by_pc: Dict[int, List[Web]] = {}
    for web in webs:
        for pc in web.live_pcs:
            by_pc.setdefault(pc, []).append(web)
    for cohabitants in by_pc.values():
        for i, a in enumerate(cohabitants):
            for b in cohabitants[i + 1 :]:
                if a.kind == b.kind and a.index != b.index:
                    adjacency[a.index].add(b.index)
                    adjacency[b.index].add(a.index)
    return adjacency


def interferes(adjacency: Dict[int, Set[int]], a: int, b: int) -> bool:
    return b in adjacency.get(a, ())
