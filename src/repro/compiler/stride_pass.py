"""Compiler-created stride predictability (paper Section 3, "Et Cetera").

    "Stride prediction can be accomplished with the insertion of an add
    instruction."

For each profiled instruction whose results advance by a constant delta,
this pass:

1. picks a *shadow register* ``S`` of the destination's class that the
   enclosing procedure never touches,
2. inserts ``add S, D, #delta`` immediately after the instruction (so ``S``
   always holds the value the *next* execution will produce), and
3. records a dead-register hint ``pc -> S`` in the profile lists, exactly as
   if the profiler had discovered the correlation itself.

Dynamic RVP with the dead list then predicts the strided instruction from
``S`` with the usual PC-indexed confidence counters — no stride fields, no
value table; the stride lives in ordinary architectural state.  The inserted
add is real code and pays real fetch/execute costs, which is the trade the
paper's sentence implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import Instruction
from ..isa.opcodes import opcode
from ..isa.program import Procedure, Program
from ..isa.registers import ALLOCATABLE_FP, ALLOCATABLE_INT, Reg
from ..profiling.lists import DeadHint, ProfileLists
from .insertion import insert_after


@dataclass
class StridePassReport:
    attempted: int = 0
    applied: int = 0
    no_free_register: int = 0
    not_writable: int = 0


def _registers_touched(program: Program, proc: Procedure) -> Set[Reg]:
    touched: Set[Reg] = set()
    for pc in range(proc.start, proc.end):
        inst = program[pc]
        for reg in (inst.dst, inst.src1, inst.src2):
            if reg is not None:
                touched.add(reg)
    return touched


def apply_stride_pass(
    program: Program,
    strides: Dict[int, int],
    lists: Optional[ProfileLists] = None,
    verify: Optional[bool] = None,
) -> Tuple[Program, ProfileLists, StridePassReport]:
    """Insert shadow-stride adds for the given ``pc -> delta`` map.

    Returns ``(new_program, new_lists, report)``: the transformed program and
    a profile-lists object whose pcs are remapped to it, with the new stride
    hints added.  The input ``lists`` (if any) is not modified.

    Postcondition (on by default, ``verify=False`` or ``REPRO_VERIFY_PASSES=0``
    to skip): the final program is verified once here against the *remapped*
    lists, so the inner :func:`insert_after` call skips its own check.
    """
    report = StridePassReport()
    insertions: Dict[int, List[Instruction]] = {}
    shadow_of: Dict[int, Reg] = {}
    free_by_proc: Dict[str, List[Reg]] = {}

    for pc, delta in sorted(strides.items()):
        report.attempted += 1
        inst = program[pc]
        dst = inst.writes
        if dst is None or dst.is_fp:
            # FP strides would need an immediate-form fadd the ISA does not
            # define (real ISAs have no fp-immediate adds either); the
            # transformation targets integer induction values.
            report.not_writable += 1
            continue
        proc = program.procedure_of(pc)
        if proc.name not in free_by_proc:
            touched = _registers_touched(program, proc)
            free_by_proc[proc.name] = [reg for reg in ALLOCATABLE_INT if reg not in touched]
        free = free_by_proc[proc.name]
        if not free:
            report.no_free_register += 1
            continue
        shadow = free.pop(0)
        shadow_of[pc] = shadow
        insertions[pc] = [Instruction(op=opcode("add"), dst=shadow, src1=dst, imm=delta)]
        report.applied += 1

    new_program, pc_map = insert_after(program, insertions, name=f"{program.name}+stride", verify=False)

    new_lists = ProfileLists(threshold=lists.threshold if lists else 0.8)
    if lists is not None:
        new_lists.same = {pc_map[pc] for pc in lists.same if pc in pc_map}
        new_lists.dead = {pc_map[pc]: hint for pc, hint in lists.dead.items() if pc in pc_map}
        new_lists.live = {pc_map[pc]: hint for pc, hint in lists.live.items() if pc in pc_map}
        new_lists.last_value = {pc_map[pc] for pc in lists.last_value if pc in pc_map}
    for pc, shadow in shadow_of.items():
        if pc in pc_map and pc_map[pc] not in new_lists.dead:
            new_lists.dead[pc_map[pc]] = DeadHint(reg=shadow, producer_pc=pc_map[pc] + 1)
            new_lists.same.discard(pc_map[pc])

    from ..analysis.verifier import check_program, verification_enabled

    if verification_enabled(verify):
        check_program(
            new_program,
            source=f"apply_stride_pass({program.name})",
            lists=new_lists,
            baseline=program,
            pc_map=pc_map,
        )
    return new_program, new_lists, report
