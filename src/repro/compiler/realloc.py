"""Profile-guided register reallocation (paper Section 7.3).

Starting from the dead-register and last-value profile lists, we support as
many register reuses as a *legal* register allocation allows:

* **Dead-register reuse** — "changing the register allocation of the
  destination of the current instruction to match that of the dead register":
  the candidate's definition web is recoloured to the register of the web
  that produced the matching value, provided the two live ranges do not
  conflict and no interfering web already holds that register.  Reuses whose
  producer lives in another procedure, or whose webs cross a calling-
  convention boundary, are abandoned — as in the paper.
* **Last-value reuse (LVR)** — the candidate's definition web must not share
  its register with any other definition in its innermost loop ("we create an
  interference edge with every instruction in the innermost loop containing
  the instruction").  If its current register is shared, it is moved to a
  register free of all those definitions; instructions not in a loop are
  abandoned.

When registers run out, reuses are removed in the paper's priority order:
LVR before dead-register reuse (heuristic 1), outer loops before inner
(heuristic 2), lowest critical-path contribution first (heuristic 3).  We
realise this by *applying* candidates in the reverse order — dead reuses
first, then LVR from the innermost loops and highest criticality down — so
that when a candidate finds no legal register it is exactly the one the
paper's pruning would have discarded.

Unlike a from-scratch Chaitin pass, the repair touches only candidate webs:
untouched code keeps its original registers, so reuse that already exists in
the input program is never collateral damage.  (The full Chaitin-Briggs
colourer in :mod:`repro.compiler.coloring` backstops the repair: the final
assignment is verified against the augmented interference graph.)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa.instructions import Instruction
from ..isa.program import Procedure, Program
from ..isa.registers import ALLOCATABLE_FP, ALLOCATABLE_INT, Reg
from ..profiling.lists import ProfileLists
from .interference import build_interference
from .liveness import compute_liveness
from .webs import WebAnalysis, build_webs

_POOLS = {"int": ALLOCATABLE_INT, "fp": ALLOCATABLE_FP}


@dataclass
class _DeadCandidate:
    pc: int
    def_web: int
    src_web: int
    critical: int


@dataclass
class _LvrCandidate:
    pc: int
    def_web: int
    loop_depth: int
    loop_def_webs: Set[int]
    critical: int


@dataclass
class ReallocReport:
    """What happened to each profile-suggested reuse."""

    dead_attempted: int = 0
    dead_applied: int = 0
    dead_conflicting: int = 0  # live ranges / registers already conflict
    dead_foreign: int = 0  # producer in another procedure or fixed web
    lvr_attempted: int = 0
    lvr_applied: int = 0
    lvr_not_in_loop: int = 0
    lvr_shared: int = 0  # web shared with another loop definition
    pruned_for_coloring: int = 0  # no exclusive register available
    #: pcs whose destination became loop-exclusive (applied LVR); the
    #: verifier re-checks exclusivity from these (rule RVP008).
    lvr_pcs: Set[int] = field(default_factory=set)

    def merged(self, other: "ReallocReport") -> "ReallocReport":
        result = ReallocReport()
        for name in vars(result):
            mine, theirs = getattr(self, name), getattr(other, name)
            setattr(result, name, mine | theirs if isinstance(mine, set) else mine + theirs)
        return result


def reallocate(
    program: Program,
    lists: ProfileLists,
    critical: Optional[Counter] = None,
    loads_only: bool = False,
    verify: Optional[bool] = None,
) -> Tuple[Program, ReallocReport]:
    """Apply Section 7.3 reallocation; returns (new program, report).

    Postcondition (on by default, ``verify=False`` or ``REPRO_VERIFY_PASSES=0``
    to skip): the rewritten program passes the verifier, including RVP007
    (every recoloured web respects the pre-rewrite interference graph) and
    RVP008 (applied LVR registers are genuinely loop-exclusive).
    """
    critical = critical or Counter()
    total = ReallocReport()
    rewrites: Dict[int, Instruction] = {}
    checks = []
    for proc in program.procedures:
        proc_rewrites, report, check = _reallocate_procedure(program, proc, lists, critical, loads_only)
        rewrites.update(proc_rewrites)
        checks.append(check)
        total = total.merged(report)

    def rewrite(inst: Instruction) -> Instruction:
        return rewrites.get(inst.pc, inst)

    result = program.rewrite(rewrite, name=f"{program.name}+realloc")

    from ..analysis.verifier import check_program, verification_enabled

    if verification_enabled(verify):
        check_program(
            result,
            source=f"reallocate({program.name})",
            lists=lists,
            lvr_pcs=total.lvr_pcs,
            allocations=checks,
            baseline=program,
        )
    return result, total


def _reallocate_procedure(
    program: Program,
    proc: Procedure,
    lists: ProfileLists,
    critical: Counter,
    loads_only: bool,
) -> Tuple[Dict[int, Instruction], ReallocReport, "AllocationCheck"]:
    # Imported here: analysis.verifier imports compiler.liveness, so a
    # module-level import would cycle through the package __init__.
    from ..analysis.verifier import AllocationCheck

    report = ReallocReport()
    liveness = compute_liveness(program, proc)
    analysis = build_webs(program, proc, liveness)
    adjacency = build_interference(analysis.webs)
    webs = analysis.webs

    assignment: Dict[int, Reg] = {web.index: web.reg for web in webs}
    #: extra exclusivity edges added by applied LVR candidates
    extra_edges: Dict[int, Set[int]] = {}

    def neighbours(index: int) -> Set[int]:
        return adjacency.get(index, set()) | extra_edges.get(index, set())

    def colors_near(index: int) -> Set[Reg]:
        return {assignment[n] for n in neighbours(index)}

    # ------------------------------------------------------------------
    # Dead-register reuses first (they survive pruning longest, so they get
    # first pick of the registers).  Most valuable (critical) first.
    # ------------------------------------------------------------------
    dead_candidates = _collect_dead_candidates(program, proc, lists, analysis, adjacency, critical, loads_only, report)
    dead_moved: Set[int] = set()
    for cand in sorted(dead_candidates, key=lambda c: -c.critical):
        target = assignment[cand.src_web]
        if target in colors_near(cand.def_web):
            report.dead_conflicting += 1
            continue
        assignment[cand.def_web] = target
        dead_moved.add(cand.def_web)
        report.dead_applied += 1

    # ------------------------------------------------------------------
    # LVR candidates: innermost loops and highest criticality first, so that
    # if registers run out, the abandoned ones are the outer-loop /
    # non-critical reuses (paper heuristics 2 and 3).
    # ------------------------------------------------------------------
    lvr_candidates = _collect_lvr_candidates(program, proc, lists, analysis, critical, loads_only, report)
    used_colors = {assignment[web.index] for web in webs}
    for cand in sorted(lvr_candidates, key=lambda c: (-c.loop_depth, -c.critical)):
        if cand.def_web in dead_moved:
            continue  # already placed by a dead-register merge
        exclusion = cand.loop_def_webs | neighbours(cand.def_web)
        taken = {assignment[n] for n in exclusion}
        current = assignment[cand.def_web]
        if current not in taken:
            chosen: Optional[Reg] = current
        else:
            pool = _POOLS[webs[cand.def_web].kind]
            # Prefer a register unused anywhere in the procedure, to avoid
            # creating new sharing; fall back to any legal register.
            chosen = next((r for r in pool if r not in taken and r not in used_colors), None)
            if chosen is None:
                chosen = next((r for r in pool if r not in taken), None)
        if chosen is None:
            report.pruned_for_coloring += 1
            continue
        assignment[cand.def_web] = chosen
        used_colors.add(chosen)
        for other in cand.loop_def_webs:
            extra_edges.setdefault(cand.def_web, set()).add(other)
            extra_edges.setdefault(other, set()).add(cand.def_web)
        report.lvr_applied += 1
        report.lvr_pcs.add(cand.pc)

    # The legality of every move is re-established by the RVP007/RVP008
    # postcondition in :func:`reallocate`, which sees this context.
    merged_adjacency = {
        web.index: adjacency.get(web.index, set()) | extra_edges.get(web.index, set())
        for web in webs
    }
    check = AllocationCheck(
        proc_name=proc.name,
        webs=webs,
        adjacency=merged_adjacency,
        assignment=dict(assignment),
    )

    changed = {index for index, reg in assignment.items() if reg != webs[index].reg}
    if not changed:
        return {}, report, check

    rewrites: Dict[int, Instruction] = {}
    for pc in range(proc.start, proc.end):
        inst = program[pc]
        new_dst, new_src1, new_src2 = inst.dst, inst.src1, inst.src2
        web = analysis.web_of_def(pc)
        if web is not None and web.index in changed:
            new_dst = assignment[web.index]
        use1 = analysis.web_of_use(pc, "src1")
        if use1 is not None and use1.index in changed:
            new_src1 = assignment[use1.index]
        use2 = analysis.web_of_use(pc, "src2")
        if use2 is not None and use2.index in changed:
            new_src2 = assignment[use2.index]
        if (new_dst, new_src1, new_src2) != (inst.dst, inst.src1, inst.src2):
            rewrites[pc] = replace(inst, dst=new_dst, src1=new_src1, src2=new_src2)
    return rewrites, report, check


def _collect_dead_candidates(
    program: Program,
    proc: Procedure,
    lists: ProfileLists,
    analysis: WebAnalysis,
    adjacency: Dict[int, Set[int]],
    critical: Counter,
    loads_only: bool,
    report: ReallocReport,
) -> List[_DeadCandidate]:
    candidates: List[_DeadCandidate] = []
    for pc, hint in sorted(lists.dead.items()):
        if pc not in proc:
            continue
        if loads_only and not program[pc].is_load:
            continue
        if pc in lists.same:
            continue  # already reusing; nothing to do
        report.dead_attempted += 1
        def_web = analysis.web_of_def(pc)
        if def_web is None or def_web.fixed:
            report.dead_foreign += 1
            continue
        if hint.producer_pc is None or hint.producer_pc not in proc:
            report.dead_foreign += 1  # produced in another procedure
            continue
        src_web = analysis.web_of_def(hint.producer_pc)
        if (
            src_web is None
            or src_web.fixed
            or src_web.kind != def_web.kind
            or src_web.reg != hint.reg
            or src_web.index == def_web.index
        ):
            report.dead_foreign += 1
            continue
        if src_web.index in adjacency.get(def_web.index, ()):
            report.dead_conflicting += 1  # live ranges already conflict
            continue
        candidates.append(
            _DeadCandidate(pc=pc, def_web=def_web.index, src_web=src_web.index, critical=critical.get(pc, 0))
        )
    return candidates


def _collect_lvr_candidates(
    program: Program,
    proc: Procedure,
    lists: ProfileLists,
    analysis: WebAnalysis,
    critical: Counter,
    loads_only: bool,
    report: ReallocReport,
) -> List[_LvrCandidate]:
    candidates: List[_LvrCandidate] = []
    for pc in sorted(lists.last_value):
        if pc not in proc or pc in lists.same:
            continue
        if loads_only and not program[pc].is_load:
            continue
        report.lvr_attempted += 1
        def_web = analysis.web_of_def(pc)
        if def_web is None or def_web.fixed:
            report.lvr_not_in_loop += 1
            continue
        loop = program.innermost_loop(pc)
        if loop is None:
            report.lvr_not_in_loop += 1  # abandoned: not in a loop
            continue
        loop_webs: Set[int] = set()
        shared = False
        for other_pc in loop.body:
            if other_pc == pc:
                continue
            other_web = analysis.web_of_def(other_pc)
            if other_web is None or other_web.kind != def_web.kind:
                continue
            if other_web.index == def_web.index:
                shared = True  # another loop definition shares the web
                break
            loop_webs.add(other_web.index)
        if shared:
            report.lvr_shared += 1
            continue
        candidates.append(
            _LvrCandidate(
                pc=pc,
                def_web=def_web.index,
                loop_depth=loop.depth,
                loop_def_webs=loop_webs,
                critical=critical.get(pc, 0),
            )
        )
    return candidates
