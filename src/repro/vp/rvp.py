"""Dynamic register-value prediction (the paper's contribution, Section 4.2).

Storage: a 1K-entry direct-mapped table of 3-bit resetting confidence
counters indexed by instruction PC — *no value storage at all*.  The counters
are deliberately untagged: "With RVP, positive interference can be exploited
when there are no tags, as long as both instructions that map to the same
confidence counter experience register-value reuse."

The prediction value is whatever is already in the register file:

* with no compiler assistance the source is the instruction's own
  destination register (``drvp``);
* with the dead/live profile lists, listed instructions read the correlated
  register instead (``drvp_dead`` — the paper's idealised model of
  register reallocation);
* with the last-value list, listed instructions predict their own previous
  result (``drvp_dead_lv`` — the idealised model of the compiler reserving a
  loop-exclusive register, under which same-register reuse equals last-value
  reuse).  The per-pc value memory used to *simulate* this costs nothing in
  the modelled hardware; it stands in for the value sitting undisturbed in
  the reserved register.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa.instructions import Instruction
from ..profiling.lists import HintKind, ProfileLists
from .base import PredictionSource, SourceKind, ValuePredictor
from .confidence import DEFAULT_THRESHOLD, ResettingCounterTable


class DynamicRVP(ValuePredictor):
    """PC-indexed confidence counters + register-file prediction sources."""

    __slots__ = (
        "counters", "tagged", "_tags", "loads_only", "lists",
        "use_dead", "use_live", "use_lv", "_last_result", "name",
    )

    def __init__(
        self,
        entries: int = 1024,
        threshold: int = DEFAULT_THRESHOLD,
        loads_only: bool = False,
        lists: Optional[ProfileLists] = None,
        use_dead: bool = False,
        use_live: bool = False,
        use_lv: bool = False,
        tagged: bool = False,
        name: Optional[str] = None,
    ) -> None:
        """``tagged=True`` adds PC tags to the confidence counters — the
        ablation the paper ran to confirm that *untagged* counters perform
        better (positive interference helps RVP; see Section 7.2).  A tag
        mismatch yields no prediction and the entry is stolen on update."""
        self.counters = ResettingCounterTable(entries, threshold)
        self.tagged = tagged
        self._tags: Dict[int, int] = {}
        self.loads_only = loads_only
        self.lists = lists
        self.use_dead = use_dead
        self.use_live = use_live
        self.use_lv = use_lv
        self._last_result: Dict[int, int] = {}
        if name is not None:
            self.name = name
        else:
            suffix = "".join(s for s, on in [("_dead", use_dead), ("_live", use_live), ("_lv", use_lv)] if on)
            self.name = ("drvp" if loads_only else "drvp_all") + suffix

    def source(self, inst: Instruction) -> Optional[PredictionSource]:
        if inst.writes is None:
            return None
        if self.loads_only and not inst.is_load:
            return None
        if self.lists is not None:
            hint = self.lists.hint_for(inst.pc, use_dead=self.use_dead, use_live=self.use_live, use_lv=self.use_lv)
            if hint is HintKind.REG:
                reg = self.lists.hint_reg(inst.pc, use_live=self.use_live)
                if reg is not None and reg.kind == inst.writes.kind:
                    return PredictionSource(SourceKind.REG, reg)
            elif hint is HintKind.LAST_VALUE:
                return PredictionSource(SourceKind.STORED)
        return PredictionSource(SourceKind.DST)

    def static_fingerprint(self):
        # entries/threshold/tagged shape only confidence, not source().
        lists_fp = self.lists.fingerprint() if self.lists is not None else None
        return ("rvp", self.loads_only, self.use_dead, self.use_live, self.use_lv, lists_fp)

    def confident(self, pc: int) -> bool:
        if self.tagged and self._tags.get(self.counters.index(pc)) != pc:
            return False
        return self.counters.confident(pc)

    def stored_value(self, pc: int) -> Optional[int]:
        return self._last_result.get(pc)

    def update(self, pc: int, correct: bool, actual: int) -> None:
        if self.tagged:
            index = self.counters.index(pc)
            if self._tags.get(index) != pc:
                # Steal the entry: new owner starts cold.
                self._tags[index] = pc
                self.counters.update(pc, False)
                self._last_result[pc] = actual
                return
        self.counters.update(pc, correct)
        self._last_result[pc] = actual

    def reset(self) -> None:
        self.counters.reset()
        self._tags.clear()
        self._last_result.clear()
