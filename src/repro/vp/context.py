"""Context-based (two-level) value prediction (Sazeides & Smith [13],
Wang & Franklin [17]; paper Section 2).

The most storage-hungry comparator class the paper cites: a first-level
table records, per static instruction, the recent *value history* (an order-k
context); a second-level table maps each observed context to the value that
followed it, with a resetting confidence counter.  Captures repeating value
*sequences* (e.g. 1,2,3,1,2,3,...) that last-value, stride and register-value
prediction all miss.

Storage accounting (64-bit machine, defaults): the VHT holds k values per
entry and the VPT one value + counter per entry — several times LVP's cost,
which is the paper's argument for leaving this class out of its figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Instruction
from .base import PredictionSource, SourceKind, ValuePredictor
from .confidence import COUNTER_MAX, DEFAULT_THRESHOLD


class ContextPredictor(ValuePredictor):
    """Order-k FCM (finite context method) value predictor."""

    __slots__ = (
        "entries", "vpt_entries", "order", "threshold", "loads_only", "name",
        "_mask", "_vpt_mask", "_vht", "_vpt",
    )

    table_backed = True

    def __init__(
        self,
        entries: int = 1024,
        vpt_entries: int = 4096,
        order: int = 2,
        threshold: int = DEFAULT_THRESHOLD,
        loads_only: bool = False,
    ) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if vpt_entries <= 0 or vpt_entries & (vpt_entries - 1):
            raise ValueError("vpt_entries must be a positive power of two")
        if order < 1:
            raise ValueError("order must be >= 1")
        self.entries = entries
        self.vpt_entries = vpt_entries
        self.order = order
        self.threshold = threshold
        self.loads_only = loads_only
        self.name = "context" if loads_only else "context_all"
        self._mask = entries - 1
        self._vpt_mask = vpt_entries - 1
        #: value history table: per pc slot, (tag, history tuple)
        self._vht: List[Optional[Tuple[int, Tuple[int, ...]]]] = [None] * entries
        #: value prediction table: context hash -> (value, counter)
        self._vpt: List[Tuple[int, int]] = [(0, 0) for _ in range(vpt_entries)]

    # ------------------------------------------------------------------
    def _context(self, pc: int) -> Optional[int]:
        entry = self._vht[pc & self._mask]
        if entry is None or entry[0] != pc or len(entry[1]) < self.order:
            return None
        h = 0
        for value in entry[1]:
            h = (h * 0x9E3779B1 + value) & 0xFFFFFFFF
        return h & self._vpt_mask

    def source(self, inst: Instruction) -> Optional[PredictionSource]:
        if inst.writes is None:
            return None
        if self.loads_only and not inst.is_load:
            return None
        return PredictionSource(SourceKind.STORED)

    def static_fingerprint(self):
        return ("table_stored", self.loads_only)

    def confident(self, pc: int) -> bool:
        context = self._context(pc)
        return context is not None and self._vpt[context][1] >= self.threshold

    def stored_value(self, pc: int) -> Optional[int]:
        context = self._context(pc)
        if context is None:
            return None
        return self._vpt[context][0]

    def update(self, pc: int, correct: bool, actual: int) -> None:
        index = pc & self._mask
        context = self._context(pc)
        if context is not None:
            value, counter = self._vpt[context]
            if value == actual:
                self._vpt[context] = (value, min(COUNTER_MAX, counter + 1))
            else:
                # Replace the context's successor; confidence restarts.
                self._vpt[context] = (actual, 0)
        # Advance the per-pc history.
        entry = self._vht[index]
        if entry is None or entry[0] != pc:
            history: Tuple[int, ...] = (actual,)
        else:
            history = (entry[1] + (actual,))[-self.order :]
        self._vht[index] = (pc, history)

    def reset(self) -> None:
        self._vht = [None] * self.entries
        self._vpt = [(0, 0) for _ in range(self.vpt_entries)]
