"""Buffer-based last-value prediction (Lipasti & Shen [7, 8]).

The paper's comparison point: a 1K-entry last-value table with one 3-bit
resetting confidence counter per entry and a confidence threshold of 7.
Entries are tagged with the PC ("we also assume dynamic LVP buffer entries
are tagged with the PC, which improves performance"); a tag mismatch yields
no prediction, and the entry is reclaimed on update.

On a 64-bit machine this table costs 8KB of values plus tag storage — the
hardware the paper's storageless scheme eliminates.
"""

from __future__ import annotations

from typing import List, Optional

from ..isa.instructions import Instruction
from .base import PredictionSource, SourceKind, ValuePredictor
from .confidence import COUNTER_MAX, DEFAULT_THRESHOLD


class LastValuePredictor(ValuePredictor):
    """Tagged, direct-mapped last-value table."""

    __slots__ = ("entries", "threshold", "loads_only", "tagged", "name", "_mask", "_tags", "_values", "_counters")

    #: STORED values come from a real hardware table (available at rename with
    #: no dependence), unlike the idealised reserved-register model.
    table_backed = True

    def __init__(
        self,
        entries: int = 1024,
        threshold: int = DEFAULT_THRESHOLD,
        loads_only: bool = True,
        tagged: bool = True,
    ) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.threshold = threshold
        self.loads_only = loads_only
        self.tagged = tagged
        self.name = "lvp" if loads_only else "lvp_all"
        self._mask = entries - 1
        self._tags: List[Optional[int]] = [None] * entries
        self._values: List[int] = [0] * entries
        self._counters: List[int] = [0] * entries

    def static_fingerprint(self):
        # source() depends only on loads_only; every table-backed STORED
        # predictor with the same candidate filter shares a stream.
        return ("table_stored", self.loads_only)

    def _hit(self, pc: int) -> bool:
        idx = pc & self._mask
        return not self.tagged or self._tags[idx] == pc

    def source(self, inst: Instruction) -> Optional[PredictionSource]:
        if inst.writes is None:
            return None
        if self.loads_only and not inst.is_load:
            return None
        return PredictionSource(SourceKind.STORED)

    def confident(self, pc: int) -> bool:
        idx = pc & self._mask
        return self._hit(pc) and self._counters[idx] >= self.threshold

    def stored_value(self, pc: int) -> Optional[int]:
        if not self._hit(pc):
            return None
        return self._values[pc & self._mask]

    def update(self, pc: int, correct: bool, actual: int) -> None:
        idx = pc & self._mask
        fresh = self._tags[idx] is None or (self.tagged and self._tags[idx] != pc)
        if fresh:
            # Allocate (or steal) the entry.
            self._tags[idx] = pc
            self._values[idx] = actual
            self._counters[idx] = 0
            return
        if actual == self._values[idx]:
            if self._counters[idx] < COUNTER_MAX:
                self._counters[idx] += 1
        else:
            self._counters[idx] = 0
        self._values[idx] = actual
        self._tags[idx] = pc

    def reset(self) -> None:
        self._tags = [None] * self.entries
        self._values = [0] * self.entries
        self._counters = [0] * self.entries
