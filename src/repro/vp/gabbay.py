"""The Gabbay & Mendelson register-file predictor [4] (paper Section 2).

The closest predecessor to dynamic RVP, included in Figure 6 as ``Grp_all``
(without its stride component, "to equalize comparisons").  The crucial
difference from the paper's RVP: **confidence counters are indexed by
destination register number, not instruction PC** — "in that scheme,
register-value reuse is only available if it remains high for *all*
definitions of the register".  Every instruction that writes ``r7`` shares
one counter, so interference is severe, which is exactly what Table 2's
coverage column shows.
"""

from __future__ import annotations

from typing import Optional

from ..isa.instructions import Instruction
from ..isa.registers import Reg
from .base import PredictionSource, SourceKind, ValuePredictor
from .confidence import COUNTER_MAX, DEFAULT_THRESHOLD


class GabbayRegisterPredictor(ValuePredictor):
    """Per-architectural-register confidence; prediction reads the register.

    ``static_fingerprint`` stays at the base ``None``: ``source()`` fills the
    pc→register routing table as a side effect, so a cached stream prepared by
    another instance would leave this one unable to route its counters."""

    __slots__ = ("threshold", "loads_only", "name", "_counters", "_reg_of_pc")

    def __init__(self, threshold: int = DEFAULT_THRESHOLD, loads_only: bool = False) -> None:
        self.threshold = threshold
        self.loads_only = loads_only
        self.name = "grp" if loads_only else "grp_all"
        self._counters = [0] * 64
        #: rename-time routing: pc -> register id, filled by source() so that
        #: confident()/update() (keyed by pc in the common interface) can find
        #: the per-register counter.  One pc always writes one register.
        self._reg_of_pc = {}

    @staticmethod
    def _rid(reg: Reg) -> int:
        return reg.index + (0 if reg.is_int else 32)

    def source(self, inst: Instruction) -> Optional[PredictionSource]:
        dst = inst.writes
        if dst is None:
            return None
        if self.loads_only and not inst.is_load:
            return None
        self._reg_of_pc[inst.pc] = self._rid(dst)
        return PredictionSource(SourceKind.DST)

    def confident(self, pc: int) -> bool:
        rid = self._reg_of_pc.get(pc)
        return rid is not None and self._counters[rid] >= self.threshold

    def update(self, pc: int, correct: bool, actual: int) -> None:
        rid = self._reg_of_pc.get(pc)
        if rid is None:
            return
        if correct:
            if self._counters[rid] < COUNTER_MAX:
                self._counters[rid] += 1
        else:
            self._counters[rid] = 0

    def reset(self) -> None:
        self._counters = [0] * 64
        self._reg_of_pc.clear()
