"""Saturating *resetting* confidence counters (paper Section 6).

The paper uses 3-bit resetting counters with a confidence threshold of 7 for
both last-value prediction and dynamic RVP: "we only predict after we have
seen seven consecutive hits.  This is a conservative filter".  A correct
outcome increments (saturating at 7); an incorrect outcome resets to zero —
so the counter value is the current hit-streak length, clipped.
"""

from __future__ import annotations

from typing import List

COUNTER_BITS = 3
COUNTER_MAX = (1 << COUNTER_BITS) - 1
DEFAULT_THRESHOLD = 7


class ResettingCounterTable:
    """A direct-mapped table of resetting confidence counters."""

    __slots__ = ("entries", "threshold", "_mask", "_counters")

    def __init__(self, entries: int, threshold: int = DEFAULT_THRESHOLD) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if not 0 < threshold <= COUNTER_MAX:
            raise ValueError(f"threshold must be in [1, {COUNTER_MAX}]")
        self.entries = entries
        self.threshold = threshold
        self._mask = entries - 1
        self._counters: List[int] = [0] * entries

    def index(self, key: int) -> int:
        return key & self._mask

    def confident(self, key: int) -> bool:
        return self._counters[key & self._mask] >= self.threshold

    def value(self, key: int) -> int:
        return self._counters[key & self._mask]

    def update(self, key: int, correct: bool) -> None:
        idx = key & self._mask
        if correct:
            if self._counters[idx] < COUNTER_MAX:
                self._counters[idx] += 1
        else:
            self._counters[idx] = 0

    def reset(self) -> None:
        self._counters = [0] * self.entries
