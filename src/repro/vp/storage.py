"""Hardware storage accounting for the predictors (paper Section 1).

The paper's opening argument is cost: "a value prediction scheme with a
2K-entry buffer on a 64-bit processor requires 16KB of storage for the value
buffer and an additional 9-13 KB for the tags", versus RVP's counters-only
budget.  This module computes those numbers for every predictor in the
repository so the comparison in the figures can always be read next to its
price tag.

Conventions (matching the paper's arithmetic):

* values are 64 bits;
* a PC tag for an ``n``-entry direct-mapped table costs ``pc_bits - log2(n)``
  bits per entry; we charge 48-bit instruction addresses, which lands a
  2K-entry table's tags at 9.25KB — inside the paper's "9-13 KB ...
  depending on the size of physical addresses";
* confidence counters are 3 bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .base import ValuePredictor
from .confidence import COUNTER_BITS

VALUE_BITS = 64
PC_BITS = 48


def _tag_bits(entries: int) -> int:
    return max(0, PC_BITS - int(math.log2(entries)))


@dataclass(frozen=True)
class StorageEstimate:
    """Bits of dedicated prediction state for one predictor."""

    name: str
    value_bits: int
    tag_bits: int
    counter_bits: int
    other_bits: int = 0

    @property
    def total_bits(self) -> int:
        return self.value_bits + self.tag_bits + self.counter_bits + self.other_bits

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8

    def describe(self) -> str:
        kib = self.total_bits / 8 / 1024
        return (
            f"{self.name}: {kib:.2f} KiB "
            f"(values {self.value_bits // 8}B, tags {self.tag_bits // 8}B, "
            f"counters {self.counter_bits // 8}B, other {self.other_bits // 8}B)"
        )


def estimate_storage(predictor: ValuePredictor) -> StorageEstimate:
    """Dedicated storage for any of the repository's predictors."""
    kind = type(predictor).__name__

    if kind == "NoPredictor":
        return StorageEstimate("no_predict", 0, 0, 0)

    if kind == "DynamicRVP":
        entries = predictor.counters.entries
        tag = _tag_bits(entries) * entries if getattr(predictor, "tagged", False) else 0
        return StorageEstimate(predictor.name, 0, tag, COUNTER_BITS * entries)

    if kind == "StaticRVP":
        # Marking lives in the opcodes; no dynamic state at all.
        return StorageEstimate(predictor.name, 0, 0, 0)

    if kind == "GabbayRegisterPredictor":
        return StorageEstimate(predictor.name, 0, 0, COUNTER_BITS * 64)

    if kind == "LastValuePredictor":
        entries = predictor.entries
        tags = _tag_bits(entries) * entries if predictor.tagged else 0
        return StorageEstimate(predictor.name, VALUE_BITS * entries, tags, COUNTER_BITS * entries)

    if kind == "StridePredictor":
        entries = predictor.entries
        return StorageEstimate(
            predictor.name,
            VALUE_BITS * entries,
            _tag_bits(entries) * entries,
            COUNTER_BITS * entries,
            other_bits=VALUE_BITS * entries,  # the stride field
        )

    if kind == "ContextPredictor":
        vht_values = VALUE_BITS * predictor.order * predictor.entries
        vht_tags = _tag_bits(predictor.entries) * predictor.entries
        vpt_values = VALUE_BITS * predictor.vpt_entries
        vpt_counters = COUNTER_BITS * predictor.vpt_entries
        return StorageEstimate(predictor.name, vht_values + vpt_values, vht_tags, vpt_counters)

    if kind == "MemoryRenamingPredictor":
        entries = predictor.entries
        store_entry_bits = PC_BITS + VALUE_BITS + 64  # pc + value + address
        return StorageEstimate(
            predictor.name,
            VALUE_BITS * entries,  # per-channel value file
            _tag_bits(entries) * entries,
            COUNTER_BITS * entries,
            other_bits=PC_BITS * entries + store_entry_bits * predictor._store_cap,
        )

    raise ValueError(f"no storage model for predictor type {kind}")
