"""Stride value prediction (Gabbay & Mendelson [4]; paper Section 2).

The buffer-based comparator the paper *excludes* from Figure 6 "to equalize
comparisons" (their Grp_all is the Gabbay register predictor *without* its
stride component).  Provided here as an extended baseline: a tagged table
holding, per static instruction, the last value and the last observed stride;
a prediction of ``last + stride`` is made once the same stride has been seen
``threshold`` consecutive times.

Captures the induction-variable values (pointers, loop indices) that
last-value and register-value prediction both miss — at the cost of a value
field *and* a stride field per entry, i.e. even more storage than LVP.
"""

from __future__ import annotations

from typing import List, Optional

from ..isa.instructions import Instruction
from ..isa.opcodes import MASK64
from .base import PredictionSource, SourceKind, ValuePredictor
from .confidence import COUNTER_MAX, DEFAULT_THRESHOLD


class StridePredictor(ValuePredictor):
    """Tagged last-value + stride table (predicts ``value + stride``)."""

    __slots__ = ("entries", "threshold", "loads_only", "name", "_mask", "_tags", "_values", "_strides", "_counters")

    table_backed = True

    def __init__(
        self,
        entries: int = 1024,
        threshold: int = DEFAULT_THRESHOLD,
        loads_only: bool = False,
    ) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.threshold = threshold
        self.loads_only = loads_only
        self.name = "stride" if loads_only else "stride_all"
        self._mask = entries - 1
        self._tags: List[Optional[int]] = [None] * entries
        self._values: List[int] = [0] * entries
        self._strides: List[int] = [0] * entries
        self._counters: List[int] = [0] * entries

    def source(self, inst: Instruction) -> Optional[PredictionSource]:
        if inst.writes is None:
            return None
        if self.loads_only and not inst.is_load:
            return None
        return PredictionSource(SourceKind.STORED)

    def static_fingerprint(self):
        return ("table_stored", self.loads_only)

    def _hit(self, pc: int) -> bool:
        return self._tags[pc & self._mask] == pc

    def confident(self, pc: int) -> bool:
        return self._hit(pc) and self._counters[pc & self._mask] >= self.threshold

    def stored_value(self, pc: int) -> Optional[int]:
        if not self._hit(pc):
            return None
        index = pc & self._mask
        return (self._values[index] + self._strides[index]) & MASK64

    def update(self, pc: int, correct: bool, actual: int) -> None:
        index = pc & self._mask
        if self._tags[index] != pc:
            self._tags[index] = pc
            self._values[index] = actual
            self._strides[index] = 0
            self._counters[index] = 0
            return
        new_stride = (actual - self._values[index]) & MASK64
        if new_stride == self._strides[index]:
            if self._counters[index] < COUNTER_MAX:
                self._counters[index] += 1
        else:
            self._strides[index] = new_stride
            self._counters[index] = 0
        self._values[index] = actual

    def reset(self) -> None:
        self._tags = [None] * self.entries
        self._values = [0] * self.entries
        self._strides = [0] * self.entries
        self._counters = [0] * self.entries
