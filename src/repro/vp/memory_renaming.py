"""Memory renaming as a value predictor (Tyson & Austin [16]; paper Sec. 2-3).

The paper's Figure 2(b) shows RVP subsuming memory renaming by assigning a
correlated store and load the same register.  This module provides the
buffer-based original as an extended baseline: a store cache records, per
address, the pc and value of the last store; a load-communication table then
maps each load pc to its *predicted communicating store value*, predicting a
load once the same store→load channel has held ``threshold`` consecutive
times.

Compared with LVP this catches loads whose value changes every time — as
long as a store recently wrote the new value — which is exactly the
store→load guest-pc pattern in the m88ksim model.  The hardware cost is the
largest of the bunch: a store cache *and* a tagged communication table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Instruction
from .base import PredictionSource, SourceKind, ValuePredictor
from .confidence import COUNTER_MAX, DEFAULT_THRESHOLD


class MemoryRenamingPredictor(ValuePredictor):
    """Store-load communication predictor (loads only, by construction)."""

    __slots__ = (
        "entries", "threshold", "_mask", "_stores", "_store_cap",
        "_store_values", "_tags", "_channels", "_counters",
    )

    table_backed = True
    name = "memren"

    def __init__(self, entries: int = 1024, store_cache: int = 4096, threshold: int = DEFAULT_THRESHOLD) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.threshold = threshold
        self._mask = entries - 1
        #: last store (pc, value) per address — bounded FIFO-ish cache
        self._stores: Dict[int, Tuple[int, int]] = {}
        self._store_cap = store_cache
        #: latest value written by each store pc (the "value file" entry the
        #: communicating store keeps fresh)
        self._store_values: Dict[int, int] = {}
        #: per load pc: (tag, predicted store pc, counter)
        self._tags: List[Optional[int]] = [None] * entries
        self._channels: List[int] = [0] * entries
        self._counters: List[int] = [0] * entries

    # ------------------------------------------------------------------
    # Store side: the pipeline feeds committed stores through observe_store.
    # ------------------------------------------------------------------
    def observe_store(self, pc: int, addr: int, value: int) -> None:
        if len(self._stores) >= self._store_cap:
            self._stores.pop(next(iter(self._stores)))
        self._stores[addr] = (pc, value)
        self._store_values[pc] = value

    # ------------------------------------------------------------------
    # ValuePredictor interface (loads)
    # ------------------------------------------------------------------
    def source(self, inst: Instruction) -> Optional[PredictionSource]:
        if not inst.is_load or inst.writes is None:
            return None
        return PredictionSource(SourceKind.STORED)

    def static_fingerprint(self):
        # Candidates are loads-with-destinations, exactly loads_only STORED.
        return ("table_stored", True)

    def _hit(self, pc: int) -> bool:
        return self._tags[pc & self._mask] == pc

    def confident(self, pc: int) -> bool:
        return self._hit(pc) and self._counters[pc & self._mask] >= self.threshold

    def stored_value(self, pc: int) -> Optional[int]:
        if not self._hit(pc):
            return None
        return self._store_values.get(self._channels[pc & self._mask])

    def update_load(self, pc: int, addr: Optional[int], actual: int) -> None:
        """Train with the load's address and value: resolve which store pc
        communicated this value (via the store cache) and track how stable
        that store→load channel is."""
        index = pc & self._mask
        store = self._stores.get(addr) if addr is not None else None
        if self._tags[index] != pc:
            self._tags[index] = pc
            self._channels[index] = store[0] if store else -1
            self._counters[index] = 0
            return
        if store is not None and store[0] == self._channels[index]:
            # Same communicating store pc as before: the channel holds.
            if self._counters[index] < COUNTER_MAX:
                self._counters[index] += 1
        else:
            self._channels[index] = store[0] if store else -1
            self._counters[index] = 0

    def update(self, pc: int, correct: bool, actual: int) -> None:
        # Address-less fallback (the pipeline calls update_load when it has
        # the address; this path keeps the common interface working).
        self.update_load(pc, None, actual)

    def reset(self) -> None:
        self._stores.clear()
        self._store_values.clear()
        self._tags = [None] * self.entries
        self._channels = [0] * self.entries
        self._counters = [0] * self.entries
