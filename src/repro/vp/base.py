"""Common value-predictor interface shared by the pipeline simulator.

The pipeline interrogates a predictor at *rename* time and trains it at
*execute/commit* time:

1. ``source(inst)`` — is this instruction a prediction candidate, and where
   would its prediction come from?  Returns a :class:`PredictionSource`
   (``DST`` = the instruction's own destination register, ``REG`` = a
   correlated register, ``STORED`` = a value the predictor itself holds —
   only buffer-based LVP and the idealised last-value-reallocation model use
   ``STORED``).
2. ``confident(pc)`` — should a prediction actually be made this time?
3. ``stored_value(pc)`` — for ``STORED`` sources, the value (or None).
4. ``update(pc, correct, actual)`` — train after the real result is known.
   ``correct`` means the *source value captured at rename* matched the
   result; register-based predictors are trained on this signal whether or
   not a prediction was issued, exactly like the hardware (the candidate
   instruction always reads its old mapping for the comparison).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Hashable, Optional

from ..isa.instructions import Instruction
from ..isa.registers import Reg


class SourceKind(enum.Enum):
    DST = "dst"  # old value of the destination register (pure RVP)
    REG = "reg"  # value of a correlated register (dead/live hints)
    STORED = "stored"  # value held by the predictor (LVP buffer / ideal LVR)


@dataclass(frozen=True)
class PredictionSource:
    kind: SourceKind
    reg: Optional[Reg] = None  # for REG sources


class ValuePredictor(abc.ABC):
    """Interface the pipeline drives.  Stateless instructions (no destination
    register) are never candidates."""

    __slots__ = ()

    #: human-readable configuration name (shown in stats)
    name: str = "predictor"

    #: does a prediction come from a dedicated value buffer (no register-file
    #: read port cost)?  Mirrors the paper's storage/port accounting.
    table_backed: bool = False

    @abc.abstractmethod
    def source(self, inst: Instruction) -> Optional[PredictionSource]:
        """Prediction source for this instruction, or None if not a candidate."""

    def static_fingerprint(self) -> Optional[Hashable]:
        """Hashable key identifying everything :meth:`source` (and
        ``table_backed``) depend on, so a prepared pipeline stream — a pure
        function of (trace, those two) — can be cached and shared across
        predictor instances.  Two predictors with equal fingerprints MUST
        yield identical ``source()`` results for every instruction of every
        trace.  ``None`` (the default) means "not cacheable": the stream is
        rebuilt per run (e.g. when ``source()`` mutates predictor state)."""
        return None

    @abc.abstractmethod
    def confident(self, pc: int) -> bool:
        """Whether to actually speculate on this instance."""

    def stored_value(self, pc: int) -> Optional[int]:
        """Value for STORED sources (None suppresses the prediction)."""
        return None

    @abc.abstractmethod
    def update(self, pc: int, correct: bool, actual: int) -> None:
        """Train with the committed outcome."""

    def reset(self) -> None:  # pragma: no cover - trivial default
        """Clear learned state (between runs)."""


class NoPredictor(ValuePredictor):
    """The no-prediction baseline."""

    __slots__ = ()

    name = "no_predict"

    def source(self, inst: Instruction) -> Optional[PredictionSource]:
        return None

    def static_fingerprint(self):
        return ("no_predict",)

    def confident(self, pc: int) -> bool:
        return False

    def update(self, pc: int, correct: bool, actual: int) -> None:
        pass
