"""Value predictors: dynamic/static RVP, buffer-based LVP, Gabbay register predictor."""

from .base import NoPredictor, PredictionSource, SourceKind, ValuePredictor
from .confidence import COUNTER_BITS, COUNTER_MAX, DEFAULT_THRESHOLD, ResettingCounterTable
from .context import ContextPredictor
from .gabbay import GabbayRegisterPredictor
from .lvp import LastValuePredictor
from .memory_renaming import MemoryRenamingPredictor
from .rvp import DynamicRVP
from .static_rvp import StaticRVP
from .storage import StorageEstimate, estimate_storage
from .stride import StridePredictor

__all__ = [
    "NoPredictor",
    "PredictionSource",
    "SourceKind",
    "ValuePredictor",
    "COUNTER_BITS",
    "COUNTER_MAX",
    "DEFAULT_THRESHOLD",
    "ResettingCounterTable",
    "ContextPredictor",
    "GabbayRegisterPredictor",
    "LastValuePredictor",
    "MemoryRenamingPredictor",
    "DynamicRVP",
    "StaticRVP",
    "StorageEstimate",
    "estimate_storage",
    "StridePredictor",
]
