"""Static register-value prediction (paper Section 4.1).

Candidates are identified by opcode — the compiler (see
:mod:`repro.compiler.marking`) replaced selected loads with ``rvp_ld`` /
``rvp_fld``.  Every marked load is predicted unconditionally: confidence
filtering happened offline, in the profile-driven marking decision.  No
dynamic state exists at all; the profile lists supply the prediction source
for dead/live/lv-marked loads exactly as for dynamic RVP.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa.instructions import Instruction
from ..profiling.lists import HintKind, ProfileLists
from .base import PredictionSource, SourceKind, ValuePredictor


class StaticRVP(ValuePredictor):
    """Opcode-driven prediction of marked loads."""

    __slots__ = ("lists", "use_dead", "use_live", "use_lv", "_last_result", "name")

    def __init__(
        self,
        lists: Optional[ProfileLists] = None,
        use_dead: bool = False,
        use_live: bool = False,
        use_lv: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.lists = lists
        self.use_dead = use_dead
        self.use_live = use_live
        self.use_lv = use_lv
        self._last_result: Dict[int, int] = {}
        if name is not None:
            self.name = name
        else:
            level = "live_lv" if use_lv else ("live" if use_live else ("dead" if use_dead else "same"))
            self.name = f"srvp_{level}"

    def source(self, inst: Instruction) -> Optional[PredictionSource]:
        if not inst.op.rvp_marked or inst.writes is None:
            return None
        if self.lists is not None:
            hint = self.lists.hint_for(inst.pc, use_dead=self.use_dead, use_live=self.use_live, use_lv=self.use_lv)
            if hint is HintKind.REG:
                reg = self.lists.hint_reg(inst.pc, use_live=self.use_live)
                if reg is not None and reg.kind == inst.writes.kind:
                    return PredictionSource(SourceKind.REG, reg)
            elif hint is HintKind.LAST_VALUE:
                return PredictionSource(SourceKind.STORED)
        return PredictionSource(SourceKind.DST)

    def static_fingerprint(self):
        # The rvp_marked gate is a property of the (marked) program, which the
        # trace key already identifies; only the hint routing varies here.
        lists_fp = self.lists.fingerprint() if self.lists is not None else None
        return ("srvp", self.use_dead, self.use_live, self.use_lv, lists_fp)

    def confident(self, pc: int) -> bool:
        return True  # marked loads are always predicted

    def stored_value(self, pc: int) -> Optional[int]:
        return self._last_result.get(pc)

    def update(self, pc: int, correct: bool, actual: int) -> None:
        self._last_result[pc] = actual

    def reset(self) -> None:
        self._last_result.clear()
