"""Event-driven fast timing tier (``PipelineSimulator(engine="fast")``).

Stats-exact reimplementation of the reference per-cycle pipeline loop in
:mod:`repro.uarch.pipeline`.  The speedup comes from four mechanisms; none of
them is allowed to change a single :class:`~repro.uarch.stats.SimStats`
counter:

**Event-driven cycle skipping.**  After every simulated cycle the engine
computes the next cycle at which anything can *happen* — the earliest of:

* a committable ROB head (commit fires next cycle),
* the next pending completion event (min over a lazily-cleaned heap of
  ``completions`` keys),
* a possible fetch (``max(next, fetch_resume)`` whenever fetch is neither
  redirect-stalled, cursor-exhausted nor queue-full),
* the fetch-queue head reaching rename maturity (``fetch_cycle +
  rename_delay``) — included *unconditionally* while the head is immature so
  dispatch-stall accounting stays uniform inside a skipped region,
* a dispatch that can actually happen now (mature head + ROB and IQ space),
* the earliest ``max(earliest_issue, min_issue)`` over issue candidates
  whose producers have all completed.

Everything between the current cycle and that wake-up point is a *quiet*
region: no stage changes machine state, and the per-cycle stat accrual the
reference loop would have performed (IQ occupancy, fetch/ROB/IQ stall
attribution) is a closed-form function of the frozen state — added in one
step by :meth:`_account_skip`.  Branch-predictor training, cache accesses and
value-predictor queries only ever occur in simulated cycles, so skipping
preserves their state bit for bit.

**Wakeup-driven issue.**  The reference ``_issue`` scans the whole ROB (200
entries) every cycle.  Here a waiting instruction lives in exactly one of
two places: the sorted *candidate* list (``_cand``, seqs of ``_WAIT``
instructions with no known-incomplete producer) or the ``waiters`` list of
one non-DONE producer.  Completion drains a producer's waiters back into the
candidate list; the issue scan re-verifies each candidate's operands and
re-parks it on the first still-incomplete producer it finds.  Because every
``_WAIT`` instruction outside ``_cand`` provably has a non-DONE producer,
iterating ``_cand`` in seq order is issue-order-equivalent to the reference
ROB scan (including the "both FU banks exhausted" early break).

**Pre-decoded stream facts + pooled DynInsts.**  The hot loop reads the flat
per-pc booleans :func:`~repro.uarch.stream.prepare_stream` bakes onto
:class:`~repro.uarch.stream.StreamEntry` (``is_load``/``is_halt``/
``cond_branch``/...) instead of chasing ``record.inst.op`` attribute chains,
and fetch recycles committed/squashed :class:`FastDynInst` objects from a
free pool instead of allocating per dynamic instruction.  Two pool-hygiene
invariants: (1) a DynInst's ``gen`` is **monotonically increasing across
reuse** (acquire restores ``gen + 1`` over the reset); completion events are
bare instruction references validated by ``state == _ISSUED and done_at ==
cycle``, which a stale event from a previous incarnation can only pass in
the one case where it is harmless — the recycled instruction legitimately
completes at that exact cycle, making the duplicate idempotent (the second
event sees ``_DONE`` and skips); (2) an instruction that never touched speculative
state (renamed on the fast path below, committed normally) is returned to
the pool with every other field already at its post-reset default, so
acquire only rewrites the handful of fields the plain lifecycle dirties —
the ``dirty`` flag marks the exceptions (full rename, squash victims) that
need a complete reset.

**Speculation-free rename fast path.**  While no prediction is unresolved,
no in-flight instruction carries speculative state (every ``spec_on`` entry
is discarded when its prediction resolves, and refetch squashes filter
survivors), so renaming a non-candidate instruction reduces to copying the
precomputed producer seqs — no closures, no inheritance walk.

The five pipeline stages are inlined into one loop in :meth:`_run` with
every run-invariant hoisted out; the inherited per-stage methods of the
reference class are *not* used by this tier (only the recovery callbacks —
``_try_resolve``/``_resolve``/``_repair_deps``/``_release_iq`` — are shared,
with :meth:`_reset_inst` and :meth:`_squash_from` overridden to maintain the
wakeup structures).

``_TEST_SKIP_EVENT`` is the mutation seam for the ``pipeline-equivalence``
fuzz oracle's self-test: setting it True suppresses the closed-form IQ
occupancy accounting for skipped cycles — exactly the class of bug the
oracle exists to catch.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import Iterable, List, Optional, Sequence

from ..sim.trace import TraceRecord
from ..vp.base import ValuePredictor
from .config import MachineConfig
from .pipeline import _DONE, _ISSUED, _WAIT, DynInst, PipelineSimulator
from .recovery import RecoveryScheme
from .stats import SimStats
from .stream import StreamEntry

#: Mutation seam (see module docstring): True seeds a skip-accounting bug.
_TEST_SKIP_EVENT = False


class FastDynInst(DynInst):
    """DynInst plus the fast tier's wakeup and pooling bookkeeping.

    ``waiters`` holds the _WAIT consumers parked on this (non-DONE) producer;
    ``in_cand`` mirrors membership in the simulator's sorted candidate list;
    ``done_at`` is the cycle of this incarnation's pending completion event
    (the event-validity cookie — see the module docstring); ``dirty`` records
    that this incarnation touched state outside the plain
    fetch/dispatch/issue/commit lifecycle (full rename or squash) and must be
    fully reset before reuse.  All are cleared by :meth:`reset`.
    """

    __slots__ = ("waiters", "in_cand", "done_at", "dirty")

    def reset(self, fetch_cycle: int) -> None:
        super().reset(fetch_cycle)
        self.waiters: List["FastDynInst"] = []
        self.in_cand = False
        self.done_at = -1
        self.dirty = False


class FastPipelineSimulator(PipelineSimulator):
    """Event-driven timing tier; stats-identical to the reference loop."""

    engine = "fast"

    def __init__(
        self,
        trace: Iterable[TraceRecord],
        predictor: ValuePredictor,
        config: MachineConfig,
        recovery: RecoveryScheme = RecoveryScheme.SELECTIVE,
        engine: Optional[str] = None,
        stream: Optional[Sequence[StreamEntry]] = None,
    ) -> None:
        super().__init__(trace, predictor, config, recovery, stream=stream)
        #: free FastDynInst objects (commit/squash return, fetch acquires)
        self._pool: List[FastDynInst] = []
        #: min-heap over completions keys (lazily cleaned: a key is live
        #: only while it is still present in ``self.completions``)
        self._comp_heap: List[int] = []
        #: sorted seqs of _WAIT instructions with no known-incomplete
        #: producer (the issue candidates; see module docstring)
        self._cand: List[int] = []
        # Per-run constants hoisted out of the hot loops.  The fast tier's
        # fetch queue holds bare instructions (no (inst, fetch_cycle)
        # tuples); the fetch cycle is recovered as earliest_issue -
        # front_depth, both immutable after fetch.
        self._iq_cap = {"int": config.iq_int, "fp": config.iq_fp}
        self._front_depth = config.front_depth
        self._observe_store = getattr(predictor, "observe_store", None)
        self._update_load = getattr(predictor, "update_load", None)

    # ==================================================================
    # Main loop: all five stages inlined, one frame of hoisted locals
    # ==================================================================
    def _run(self, max_cycles: int) -> SimStats:
        config = self.config
        stats = self.stats
        window = self.window
        wget = window.get
        completions = self.completions
        heap = self._comp_heap
        pool = self._pool
        iq_used = self.iq_used
        iq_cap = self._iq_cap
        stream = self.stream
        stream_len = len(stream)
        memory = self.memory
        data_latency = memory.data_latency
        fetch_latency = memory.fetch_latency
        # Inlined L1 hit paths (miss / in-flight-fill fall back to the cache
        # model): set lists, line shift and the MSHR map of each L1.
        l1i = memory.l1i
        l1i_sets = l1i._sets
        l1i_shift = l1i._line_shift
        l1i_nsets = l1i.num_sets
        l1i_fill = l1i._fill_ready
        l1d = memory.l1d
        l1d_sets = l1d._sets
        l1d_shift = l1d._line_shift
        l1d_nsets = l1d.num_sets
        l1d_fill = l1d._fill_ready
        branch = self.branch
        predict_and_train = branch.predict_and_train
        # Inlined gshare conditional path (BTB traffic still goes through
        # the model's helpers; indirect/call/return use predict_and_train).
        bp_pht = branch._pht
        bp_mask = branch._history_mask
        btb_lookup = branch._btb_lookup
        btb_update = branch._btb_update
        predictor = self.predictor
        update_load = self._update_load
        observe_store = self._observe_store
        trained = self._trained
        unresolved = self.unresolved_preds
        resolution_waiters = self._resolution_waiters
        recovery = self.recovery
        refetch = recovery is RecoveryScheme.REFETCH
        selective = recovery is RecoveryScheme.SELECTIVE
        commit_width = config.commit_width
        fetch_width = config.fetch_width
        rob_size = config.rob_size
        front_depth = config.front_depth
        fetch_blocks = config.fetch_blocks
        rename_delay = self._rename_delay
        queue_cap = self._fetch_queue_cap
        cfg_fu_int = config.fu_int
        cfg_fu_fp = config.fu_fp
        cfg_fu_ldst = config.fu_ldst
        pred_ports_cfg = config.pred_ports if config.pred_ports is not None else 1 << 30
        cycle = self.cycle

        while not self.halted:
            cycle += 1
            self.cycle = cycle
            if cycle > max_cycles:
                raise RuntimeError(f"simulation exceeded {max_cycles} cycles (deadlock?)")
            rob = self.rob  # refreshed each cycle: refetch squash rebinds it

            # ---------------- commit (in order, up to commit_width) -----
            committed = 0
            while rob and committed < commit_width:
                head = rob[0]
                if head.state != _DONE or head.spec_on or (head.predicted and not head.resolved):
                    break
                rob.popleft()
                entry = head.entry
                del window[entry.seq]
                if not head.iq_released:
                    head.iq_released = True
                    iq_used[entry.iq] -= 1
                if head.predicted:
                    stats.predictions += 1
                    if head.pred_correct:
                        stats.correct_predictions += 1
                committed += 1
                # Safe to recycle: every cross-instruction link is by seq
                # (resolved via `window`), except spec_consumers/waiters
                # lists — a consumer only sits on an *unresolved*
                # prediction's list (unresolved pins the consumer's spec_on,
                # blocking its commit) or a *non-DONE* producer's waiters
                # (a non-DONE producer blocks the consumer's issue).
                pool.append(head)
                if entry.is_halt:
                    self.halted = True
                    break
            if committed:
                stats.committed += committed
            if self.halted:
                break

            # ---------------- complete + prediction resolution ----------
            events = completions.pop(cycle, None)
            if events:
                for inst in events:
                    if inst.state != _ISSUED or inst.done_at != cycle:
                        continue  # stale event (instruction reset or squashed)
                    inst.state = _DONE
                    inst.complete_cycle = cycle
                    entry = inst.entry
                    seq = entry.seq
                    # Train the predictor at writeback (once per instance).
                    if entry.cand_source is not None:
                        record = entry.record
                        if record.result is not None and seq not in trained:
                            trained.add(seq)
                            if entry.is_load and update_load is not None:
                                update_load(entry.pc, record.addr, record.result)
                            else:
                                predictor.update(entry.pc, inst.train, record.result)
                    if seq == self.fetch_stalled_on:
                        self.fetch_stalled_on = None
                        if self.fetch_resume < cycle + 1:
                            self.fetch_resume = cycle + 1
                    if inst.predicted and not inst.resolved:
                        self._try_resolve(inst)
                    # A completed value may be the comparison operand some
                    # older prediction is waiting on.
                    if resolution_waiters:
                        waiters = resolution_waiters.pop(seq, None)
                        if waiters:
                            for pred in waiters:
                                if pred.predicted and not pred.resolved and pred.state == _DONE:
                                    self._try_resolve(pred)
                    # Wake the consumers parked on this producer: they
                    # re-enter the candidate list and re-verify their other
                    # operands at issue.
                    wake = inst.waiters
                    if wake:
                        inst.waiters = []
                        cand = self._cand
                        for consumer in wake:
                            if not consumer.in_cand:
                                consumer.in_cand = True
                                insort(cand, consumer.entry.seq)
                rob = self.rob  # a REFETCH resolve may have squashed

            # ---------------- issue (oldest first, FU-limited) ----------
            cand = self._cand
            if cand:
                fu_int = cfg_fu_int
                fu_fp = cfg_fu_fp
                ldst_free = cfg_fu_ldst
                keep: List[int] = []
                ap = keep.append
                for pos, seq in enumerate(cand):
                    if fu_int <= 0 and fu_fp <= 0:
                        keep.extend(cand[pos:])
                        break
                    inst = window[seq]
                    if inst.earliest_issue > cycle:
                        # earliest_issue is assigned once at fetch, and
                        # fetch runs in seq order, so it is nondecreasing
                        # across the seq-sorted candidates: every later
                        # candidate is immature too.
                        keep.extend(cand[pos:])
                        break
                    if inst.min_issue > cycle:
                        ap(seq)
                        continue
                    entry = inst.entry
                    fu = entry.fu
                    if fu == "int":
                        if fu_int <= 0:
                            ap(seq)
                            continue
                    elif fu == "ldst":
                        if ldst_free <= 0 or fu_int <= 0:
                            ap(seq)
                            continue
                    elif fu == "fp":
                        if fu_fp <= 0:
                            ap(seq)
                            continue
                    # fu == "none" needs no unit.
                    blocker = None
                    for dep in inst.deps:
                        producer = wget(dep)
                        if producer is not None and producer.state != _DONE:
                            blocker = producer
                            break
                    if blocker is not None:
                        # Park on the first incomplete producer; its
                        # completion returns this inst to the candidates.
                        inst.in_cand = False
                        blocker.waiters.append(inst)
                        continue
                    # Issue it.
                    if fu == "int":
                        fu_int -= 1
                    elif fu == "ldst":
                        ldst_free -= 1
                        fu_int -= 1
                    elif fu == "fp":
                        fu_fp -= 1
                    latency = entry.base_latency
                    record = entry.record
                    addr = record.addr
                    if addr is not None and (entry.is_load or entry.is_store):
                        # Inlined L1D plain-hit path: MRU bump + hit count,
                        # identical to Cache.access for a line that is
                        # resident with no fill in flight.
                        line = addr >> l1d_shift
                        ways = l1d_sets[line % l1d_nsets]
                        if ways is not None and line in ways and (not l1d_fill or line not in l1d_fill):
                            if ways[-1] != line:
                                ways.remove(line)
                                ways.append(line)
                            l1d.hits += 1
                        elif entry.is_load:
                            latency += data_latency(addr, cycle)
                        else:
                            data_latency(addr, cycle)
                    inst.state = _ISSUED
                    inst.in_cand = False
                    done = cycle + (latency if latency > 1 else 1)
                    inst.done_at = done
                    bucket = completions.get(done)
                    if bucket is None:
                        completions[done] = [inst]
                        heappush(heap, done)
                    else:
                        bucket.append(inst)
                    # IQ release policy (Section 7.1.1), identical to the
                    # reference.
                    if refetch:
                        if not inst.iq_released:
                            inst.iq_released = True
                            iq_used[entry.iq] -= 1
                    elif selective:
                        if not inst.spec_on and not inst.iq_released:
                            inst.iq_released = True
                            iq_used[entry.iq] -= 1
                    else:  # REISSUE
                        if not self._held_by_older_prediction(inst):
                            if not inst.iq_released:
                                inst.iq_released = True
                                iq_used[entry.iq] -= 1
                self._cand = keep

            # ---------------- dispatch / rename -------------------------
            stats.iq_occupancy_sum += iq_used["int"] + iq_used["fp"]
            fq = self.fetch_queue  # refreshed: squash rebinds it
            if fq:
                cand = self._cand
                pred_ports = pred_ports_cfg
                mature_bar = cycle - rename_delay + front_depth
                dispatched = 0
                rob_len = len(rob)  # rob only grows during dispatch
                while fq and dispatched < fetch_width:
                    inst = fq[0]
                    if inst.earliest_issue > mature_bar:
                        break  # head not through the front-end stages yet
                    if rob_len >= rob_size:
                        stats.rob_stall_cycles += 1
                        break
                    entry = inst.entry
                    iq = entry.iq
                    if iq_used[iq] >= iq_cap[iq]:
                        stats.iq_stall_cycles += 1
                        break
                    fq.popleft()
                    # Speculation-free rename fast path (module docstring):
                    # alias the stream's prebuilt producer-seq tuple (never
                    # mutated: dep_fix repairs only touch slow-path renames)
                    # and park on any in-flight producer — its completion
                    # re-enters this inst into the candidates, where all
                    # operands are re-verified.
                    blocker = None
                    if not unresolved and entry.cand_source is None:
                        deps = entry.dep_seqs
                        inst.deps = deps
                        for dep in deps:
                            producer = wget(dep)
                            if producer is not None and producer.state != _DONE:
                                blocker = producer
                                break
                        if entry.is_store and observe_store is not None:
                            record = entry.record
                            if record.addr is not None:
                                observe_store(entry.pc, record.addr, record.store_value)
                    else:
                        inst.dirty = True
                        if self._rename(inst, pred_ports > 0):
                            pred_ports -= 1
                        for dep in inst.deps:
                            producer = wget(dep)
                            if producer is not None and producer.state != _DONE:
                                blocker = producer
                                break
                    iq_used[iq] += 1
                    inst.iq_released = False
                    seq = entry.seq
                    window[seq] = inst
                    rob.append(inst)
                    rob_len += 1
                    dispatched += 1
                    # Park on an incomplete producer, or go straight to the
                    # candidate list (new seqs are in-flight maxima: append
                    # keeps _cand sorted).
                    if blocker is not None:
                        blocker.waiters.append(inst)
                    else:
                        inst.in_cand = True
                        cand.append(seq)

            # ---------------- fetch -------------------------------------
            if cycle < self.fetch_resume or self.fetch_stalled_on is not None:
                stats.fetch_stall_cycles += 1
            else:
                cursor = self.fetch_cursor
                if cursor < stream_len:
                    fetched = 0
                    blocks_left = fetch_blocks
                    last_line = -1
                    front = cycle + front_depth
                    qlen = len(fq)
                    while fetched < fetch_width and qlen < queue_cap and cursor < stream_len:
                        entry = stream[cursor]
                        record = entry.record
                        line = (record.pc * 8) >> l1i_shift
                        if line != last_line:
                            # Inlined L1I plain-hit path (MRU bump + hit
                            # count); misses and in-flight fills go through
                            # the cache model.
                            ways = l1i_sets[line % l1i_nsets]
                            if ways is not None and line in ways and (not l1i_fill or line not in l1i_fill):
                                if ways[-1] != line:
                                    ways.remove(line)
                                    ways.append(line)
                                l1i.hits += 1
                            else:
                                latency = fetch_latency(record.pc, cycle)
                                if latency > 0:
                                    self.fetch_resume = cycle + latency
                                    break
                            last_line = line
                        if pool:
                            inst = pool.pop()
                            if inst.dirty:
                                gen = inst.gen + 1  # monotonic across reuse
                                inst.entry = entry
                                inst.reset(fetch_cycle=cycle)
                                inst.gen = gen
                            else:
                                # Plain lifecycle left every other field at
                                # its post-reset default (see FastDynInst).
                                inst.entry = entry
                                inst.gen += 1
                                inst.state = _WAIT
                                inst.min_issue = 0
                                inst.complete_cycle = -1
                        else:
                            inst = FastDynInst(entry)
                        inst.earliest_issue = front
                        fq.append(inst)
                        qlen += 1
                        cursor += 1
                        fetched += 1

                        if entry.is_halt:
                            break
                        if entry.is_control:
                            if entry.cond_branch:
                                # Inlined BranchPredictor._conditional: PHT
                                # lookup + train, history update, BTB check
                                # on predicted-taken (statement-for-
                                # statement the model's logic).
                                taken = bool(record.taken)
                                branch.cond_lookups += 1
                                inst_s = record.inst
                                history = branch._history
                                index = (inst_s.pc ^ history) & bp_mask
                                counter = bp_pht[index]
                                if taken:
                                    if counter < 3:
                                        bp_pht[index] = counter + 1
                                    branch._history = ((history << 1) | 1) & bp_mask
                                    if counter >= 2:
                                        predicted_target = btb_lookup(inst_s.pc)
                                        btb_update(inst_s.pc, record.next_pc)
                                        ok = predicted_target == record.next_pc
                                        if not ok:
                                            branch.target_mispredicts += 1
                                    else:
                                        btb_update(inst_s.pc, record.next_pc)
                                        branch.cond_mispredicts += 1
                                        ok = False
                                else:
                                    if counter > 0:
                                        bp_pht[index] = counter - 1
                                    branch._history = (history << 1) & bp_mask
                                    ok = counter < 2
                                    if not ok:
                                        branch.cond_mispredicts += 1
                            else:
                                taken = True
                                ok = predict_and_train(record.inst, True, record.next_pc)
                            if not ok:
                                stats.branch_mispredicts += 1
                                self.fetch_stalled_on = entry.seq
                                break
                            if taken:
                                blocks_left -= 1
                                if blocks_left <= 0:
                                    break
                                last_line = -1  # new block may be a new line
                    self.fetch_cursor = cursor
                    stats.fetched += fetched

            # ---------------- drain halt + cycle skipping ---------------
            if self.fetch_cursor >= stream_len and not rob and not fq:
                # Trace truncated before a halt: pipeline has drained.
                self.halted = True
                break
            # Cheap wake checks first: a committable head or an event next
            # cycle means no skip — stay on the hot path.
            if rob:
                head = rob[0]
                if head.state == _DONE and not head.spec_on and (not head.predicted or head.resolved):
                    continue
            while heap and heap[0] not in completions:
                heappop(heap)
            if heap and heap[0] <= cycle + 1:
                continue
            nxt = self._next_active_cycle(max_cycles)
            if nxt > cycle + 1:
                self._account_skip(nxt - cycle - 1)
                cycle = nxt - 1

        self.stats.cycles = self.cycle
        self.stats.l1d_misses = memory.l1d.misses
        self.stats.l1i_misses = memory.l1i.misses
        return self.stats

    # ==================================================================
    # Wake-up computation and closed-form skip accounting
    # ==================================================================
    def _next_active_cycle(self, max_cycles: int) -> int:
        """Earliest cycle > ``self.cycle`` at which any stage can act.

        Every state transition of the machine is driven by one of the wake
        sources below; a cycle none of them selects only accrues the
        per-cycle stats that :meth:`_account_skip` reproduces closed-form.
        With no wake source at all the machine is deadlocked: jump straight
        to ``max_cycles + 1`` so the loop raises the reference's exact
        diagnostic after accounting the stalled tail.
        """
        cycle = self.cycle
        nxt = cycle + 1
        horizon = max_cycles + 1
        best = horizon
        # 1. committable ROB head -> commit fires next cycle.
        rob = self.rob
        if rob:
            head = rob[0]
            if head.state == _DONE and not head.spec_on and (not head.predicted or head.resolved):
                return nxt
        # 2. pending completion events (heap is lazily cleaned: stale keys
        # are ones the completion stage already popped from the dict).
        heap = self._comp_heap
        completions = self.completions
        while heap and heap[0] not in completions:
            heappop(heap)
        if heap:
            c = heap[0]
            if c <= nxt:
                return nxt
            if c < best:
                best = c
        # 3. fetch possible (not redirect-stalled, instructions left, room).
        if (
            self.fetch_stalled_on is None
            and self.fetch_cursor < len(self.stream)
            and len(self.fetch_queue) < self._fetch_queue_cap
        ):
            c = self.fetch_resume
            if c <= nxt:
                return nxt
            if c < best:
                best = c
        # 4. dispatch: queue head maturity (unconditional while immature,
        # keeping stall attribution uniform inside a region), or an actual
        # dispatch next cycle once mature with ROB and IQ space.
        fq = self.fetch_queue
        if fq:
            head_inst = fq[0]
            mature_at = head_inst.earliest_issue - self._front_depth + self._rename_delay
            if mature_at > nxt:
                if mature_at < best:
                    best = mature_at
            else:
                iq = head_inst.entry.iq
                if len(rob) < self.config.rob_size and self.iq_used[iq] < self._iq_cap[iq]:
                    return nxt
        # 5. candidates whose producers have all completed issue at
        # max(earliest_issue, min_issue).  Producers still in flight
        # complete at a heap event (source 2), which re-evaluates; a _WAIT
        # instruction outside _cand has a non-DONE producer by invariant.
        window = self.window
        wget = window.get
        for seq in self._cand:
            inst = window[seq]
            c = inst.earliest_issue
            if c >= best:
                # earliest_issue is nondecreasing across the seq-sorted
                # candidates (assigned once, in fetch order): no later
                # candidate can beat the current bound.
                break
            ready = True
            for dep in inst.deps:
                producer = wget(dep)
                if producer is not None and producer.state != _DONE:
                    ready = False
                    break
            if not ready:
                continue
            if inst.min_issue > c:
                c = inst.min_issue
            if c <= nxt:
                return nxt
            if c < best:
                best = c
        return best if best < horizon else horizon

    def _account_skip(self, skipped: int) -> None:
        """Accrue the per-cycle stats of ``skipped`` quiet cycles at once.

        During a quiet region nothing issues, completes, commits,
        dispatches or fetches, so IQ occupancy, ROB/IQ fullness and the
        fetch-stall predicate are all frozen — each reference-loop accrual
        is a plain multiple (fetch stalls additionally clipped at
        ``fetch_resume``, the only boundary a region may legally cross,
        when fetch is blocked by a full queue or an exhausted cursor).
        """
        stats = self.stats
        if not _TEST_SKIP_EVENT:
            stats.iq_occupancy_sum += skipped * (self.iq_used["int"] + self.iq_used["fp"])
        fq = self.fetch_queue
        if fq:
            head_inst = fq[0]
            if head_inst.earliest_issue - self._front_depth + self._rename_delay <= self.cycle + 1:
                # Mature head blocked for the whole region: the reference
                # loop counts one stall per cycle, ROB checked first.
                if len(self.rob) >= self.config.rob_size:
                    stats.rob_stall_cycles += skipped
                else:
                    iq = head_inst.entry.iq
                    if self.iq_used[iq] >= self._iq_cap[iq]:
                        stats.iq_stall_cycles += skipped
        if self.fetch_stalled_on is not None:
            stats.fetch_stall_cycles += skipped
        else:
            stall = self.fetch_resume - self.cycle - 1
            if stall > 0:
                stats.fetch_stall_cycles += stall if stall < skipped else skipped

    # ==================================================================
    # Recovery callbacks (shared _resolve/_try_resolve call into these)
    # ==================================================================
    def _reset_inst(self, inst: DynInst) -> None:
        # An ISSUED/DONE instruction is neither a candidate nor parked on a
        # producer (both are _WAIT-only states); returning it to _WAIT must
        # re-enter it into the candidate list.  A _WAIT instruction keeps
        # its current parking spot (the reference only bumps min_issue).
        if inst.state != _WAIT and not inst.in_cand:
            inst.in_cand = True
            insort(self._cand, inst.seq)
        super()._reset_inst(inst)

    def _squash_from(self, first_seq: int) -> None:
        # Stats-exact copy of the reference squash, adapted to the fast
        # tier's bare-instruction fetch queue, wakeup lists and pool.
        # Victims are marked dirty (their speculative fields are stale) and
        # recycled; their gen bump invalidates pending completion events.
        window = self.window
        unresolved = self.unresolved_preds
        pool = self._pool
        keep: List[FastDynInst] = []
        for inst in self.rob:
            if inst.seq >= first_seq:
                if not inst.iq_released:
                    self._release_iq(inst)
                inst.gen += 1
                # Invalidate pending completion events (the fast tier's
                # event-validity cookie, standing in for the reference's
                # gen check — an event in this very cycle's batch may not
                # have been processed yet).
                inst.done_at = -1
                del window[inst.seq]
                unresolved.pop(inst.seq, None)
                inst.dirty = True
                pool.append(inst)
            else:
                keep.append(inst)
        self.rob = deque(keep)
        new_queue: deque = deque()
        for inst in self.fetch_queue:
            if inst.seq < first_seq:
                new_queue.append(inst)
            else:
                inst.dirty = True
                pool.append(inst)
        self.fetch_queue = new_queue
        # Clean prediction bookkeeping that referenced squashed consumers.
        for pred in unresolved.values():
            pred.spec_consumers = [c for c in pred.spec_consumers if c.seq < first_seq]
            if pred.first_use is not None and pred.first_use >= first_seq:
                pred.first_use = min((c.seq for c in pred.spec_consumers), default=None)
        for inst in self.rob:
            inst.spec_on = {s for s in inst.spec_on if s in unresolved}
            # Surviving producers must not wake squashed (pooled) consumers.
            if inst.waiters:
                inst.waiters = [w for w in inst.waiters if w.seq < first_seq]
        waiters_map = self._resolution_waiters
        for key in list(waiters_map):
            kept_waiters = [p for p in waiters_map[key] if p.seq < first_seq]
            if kept_waiters and key < first_seq:
                waiters_map[key] = kept_waiters
            else:
                del waiters_map[key]
        cand = self._cand
        if cand and cand[-1] >= first_seq:
            self._cand = [seq for seq in cand if seq < first_seq]
        if self.fetch_stalled_on is not None and self.fetch_stalled_on >= first_seq:
            self.fetch_stalled_on = None
        self.fetch_cursor = first_seq
        if self.fetch_resume < self.cycle + 1:
            self.fetch_resume = self.cycle + 1
