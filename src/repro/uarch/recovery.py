"""Value-misprediction recovery schemes (paper Section 4.3).

Three mechanisms of increasing complexity:

* ``REFETCH`` — a value mispredict is treated like a branch mispredict:
  everything from the first use of the predicted value onward is squashed
  and refetched.  Highest mispredict cost, but correct predictions place no
  extra pressure on the instruction queues (entries are freed at issue, as
  in a normal out-of-order machine).
* ``REISSUE`` — every instruction after the first use is kept in the
  instruction queue until it is no longer speculative, and re-issues from
  there (one-cycle penalty) on a mispredict.
* ``SELECTIVE`` — only instructions data-dependent (directly or
  transitively) on the predicted value are kept in the queue and re-issued.

The queue-occupancy difference between the three is the paper's Section 7.1.1
result: refetch often beats reissue because holding instructions in the IQ
"prevents other instructions from getting into the machine".
"""

from __future__ import annotations

import enum


class RecoveryScheme(enum.Enum):
    REFETCH = "refetch"
    REISSUE = "reissue"
    SELECTIVE = "selective"

    @classmethod
    def parse(cls, name: str) -> "RecoveryScheme":
        try:
            return cls(name)
        except ValueError:
            raise ValueError(f"unknown recovery scheme {name!r}; choose from "
                             f"{[s.value for s in cls]}") from None
