"""Cycle-level out-of-order superscalar pipeline with register-value prediction.

Models the paper's machine (Table 1 / Section 6): superscalar fetch behind a
gshare front end, register renaming, int/fp instruction queues, limited
functional units, in-order commit from a ROB, the Table 1 memory hierarchy,
and the three value-misprediction recovery schemes of Section 4.3.

The simulator is execution-driven along the correct path (see
:mod:`repro.uarch.stream`): wrong-path instructions are not executed, their
cost is modelled by stalling fetch until the mispredicted branch resolves
(paper pipeline: 7-cycle minimum penalty).  Value prediction follows the
paper's renaming scheme exactly:

* a predicted instruction keeps its *old* register mapping visible, so
  consumers' dependences are redirected to the previous writer of the
  prediction-source register (they issue as soon as that old value exists);
* the predicted instruction itself takes the old mapping as an extra source
  operand — resolution cannot happen before the comparison value is readable;
* on a correct prediction nothing happens; on a mispredict the configured
  recovery scheme fires (refetch squash / full reissue / selective reissue),
  and consumers re-issue one cycle after resolution at the earliest.

Instruction-queue occupancy follows Section 7.1.1: refetch frees IQ entries
at issue; reissue holds every post-first-use instruction until it is no
longer speculative; selective reissue holds only the dependence cone.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..isa.opcodes import OpKind
from ..sim.trace import TraceRecord
from ..vp.base import SourceKind, ValuePredictor
from .branch import BranchPredictor
from .cache import MemoryHierarchy
from .config import MachineConfig
from .recovery import RecoveryScheme
from .stats import SimStats
from .stream import StreamEntry, prepare_stream

_WAIT, _ISSUED, _DONE = 0, 1, 2

#: Engine selection: ``fast`` (event-driven, the default) or ``reference``
#: (this module's per-cycle loop, kept verbatim as the stats-exact oracle).
PIPELINE_ENGINES = ("fast", "reference")
_ENGINE_ENV = "REPRO_PIPELINE_ENGINE"
_DEFAULT_ENGINE = "fast"


def _resolve_engine(engine: Optional[str]) -> str:
    resolved = engine if engine is not None else os.environ.get(_ENGINE_ENV) or _DEFAULT_ENGINE
    if resolved not in PIPELINE_ENGINES:
        raise ValueError(
            f"unknown pipeline engine {resolved!r}; choose from {PIPELINE_ENGINES}"
        )
    return resolved


def _metrics():
    # Lazy: repro.core imports repro.uarch transitively at package-init time.
    from ..core.metrics import get_metrics

    return get_metrics()


class DynInst:
    """Runtime state of one in-flight dynamic instruction."""

    __slots__ = (
        "entry",
        "state",
        "gen",
        "deps",
        "dep_fix",
        "spec_on",
        "spec_consumers",
        "predicted",
        "resolved",
        "pred_correct",
        "pred_value_dep",
        "first_use",
        "complete_cycle",
        "earliest_issue",
        "min_issue",
        "iq_released",
        "train",
    )

    def __init__(self, entry: StreamEntry) -> None:
        self.entry = entry
        self.reset(fetch_cycle=0)

    def reset(self, fetch_cycle: int) -> None:
        self.state = _WAIT
        self.gen = 0
        self.deps: List[int] = []
        self.dep_fix: List[Tuple[int, int]] = []
        self.spec_on: Set[int] = set()
        self.spec_consumers: List["DynInst"] = []
        self.predicted = False
        self.resolved = True
        self.pred_correct = False
        self.pred_value_dep: Optional[int] = None
        self.first_use: Optional[int] = None
        self.complete_cycle = -1
        self.earliest_issue = fetch_cycle
        self.min_issue = 0
        self.iq_released = False
        self.train = False

    @property
    def seq(self) -> int:
        return self.entry.seq


class PipelineSimulator:
    """One run = one (trace, predictor, config, recovery scheme) combination.

    Two engines share this class's stats contract: the per-cycle loop below
    (``engine="reference"``, the oracle) and the event-driven fast tier
    (``engine="fast"``, :mod:`repro.uarch.fast`), selected by the ``engine``
    argument or the ``REPRO_PIPELINE_ENGINE`` environment variable.  Both
    produce identical :class:`~repro.uarch.stats.SimStats` — every counter,
    not just IPC — which the differential test matrix enforces.

    ``stream`` optionally supplies a pre-built :func:`prepare_stream` result
    (e.g. the :class:`~repro.core.session.SimSession` stream cache) so
    campaign cells that share a (trace, predictor-fingerprint) pair prepare
    the stream once; when given, ``trace`` is ignored.
    """

    #: resolved engine name of instances of this class
    engine = "reference"

    def __new__(
        cls,
        trace: Optional[Iterable[TraceRecord]] = None,
        predictor: Optional[ValuePredictor] = None,
        config: Optional[MachineConfig] = None,
        recovery: RecoveryScheme = RecoveryScheme.SELECTIVE,
        engine: Optional[str] = None,
        stream: Optional[Sequence[StreamEntry]] = None,
    ) -> "PipelineSimulator":
        if cls is PipelineSimulator and _resolve_engine(engine) == "fast":
            from .fast import FastPipelineSimulator

            return super().__new__(FastPipelineSimulator)
        return super().__new__(cls)

    def __init__(
        self,
        trace: Iterable[TraceRecord],
        predictor: ValuePredictor,
        config: MachineConfig,
        recovery: RecoveryScheme = RecoveryScheme.SELECTIVE,
        engine: Optional[str] = None,
        stream: Optional[Sequence[StreamEntry]] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.predictor = predictor
        self.recovery = recovery
        self.stream = stream if stream is not None else prepare_stream(trace, predictor)
        self.branch = BranchPredictor(config)
        self.memory = MemoryHierarchy(config.l1i, config.l1d, config.l2)
        self.stats = SimStats()

        # Pipeline state
        self.cycle = 0
        self.fetch_cursor = 0
        self.fetch_resume = 0
        self.fetch_stalled_on: Optional[int] = None  # seq of unresolved mispredicted branch
        self.fetch_queue: Deque[Tuple[DynInst, int]] = deque()  # (inst, fetch_cycle)
        self.window: Dict[int, DynInst] = {}  # in-flight, by seq
        self.rob: Deque[DynInst] = deque()  # in-flight, seq order
        self.iq_used = {"int": 0, "fp": 0}
        self.completions: Dict[int, List[Tuple[DynInst, int]]] = {}
        self.unresolved_preds: Dict[int, DynInst] = {}
        self.halted = False
        self._fetch_queue_cap = 3 * config.fetch_width
        self._rename_delay = 3  # fetch -> rename/dispatch latency (front stages)
        self._trained: Set[int] = set()  # seqs whose outcome already trained the predictor
        #: predictions whose comparison operand has not completed yet,
        #: keyed by the comparison producer's seq
        self._resolution_waiters: Dict[int, List[DynInst]] = {}

    # ==================================================================
    # Main loop
    # ==================================================================
    def run(self, max_cycles: int = 5_000_000) -> SimStats:
        metrics = _metrics()
        with metrics.timer("pipeline.wall"):
            self._run(max_cycles)
        metrics.inc("pipeline.runs")
        metrics.inc("pipeline.cycles", self.stats.cycles)
        metrics.inc(f"predictor.{self.predictor.name}.predictions", self.stats.predictions)
        metrics.inc(f"predictor.{self.predictor.name}.correct", self.stats.correct_predictions)
        return self.stats

    def _run(self, max_cycles: int) -> SimStats:
        while not self.halted:
            self.cycle += 1
            if self.cycle > max_cycles:
                raise RuntimeError(f"simulation exceeded {max_cycles} cycles (deadlock?)")
            self._commit()
            if self.halted:
                break
            self._complete()
            self._issue()
            self._dispatch()
            self._fetch()
            if self.fetch_cursor >= len(self.stream) and not self.rob and not self.fetch_queue:
                # Trace truncated before a halt: pipeline has drained.
                self.halted = True
        self.stats.cycles = self.cycle
        self.stats.l1d_misses = self.memory.l1d.misses
        self.stats.l1i_misses = self.memory.l1i.misses
        return self.stats

    # ==================================================================
    # Commit (in order, up to commit_width)
    # ==================================================================
    def _commit(self) -> None:
        committed = 0
        while self.rob and committed < self.config.commit_width:
            head = self.rob[0]
            if head.state != _DONE or head.spec_on or (head.predicted and not head.resolved):
                break
            self.rob.popleft()
            del self.window[head.seq]
            if not head.iq_released:
                self._release_iq(head)
            entry = head.entry
            if head.predicted:
                self.stats.predictions += 1
                if head.pred_correct:
                    self.stats.correct_predictions += 1
            self.stats.committed += 1
            committed += 1
            if entry.record.inst.is_halt:
                self.halted = True
                return

    # ==================================================================
    # Completion + prediction resolution
    # ==================================================================
    def _complete(self) -> None:
        events = self.completions.pop(self.cycle, None)
        if not events:
            return
        for inst, gen in events:
            if inst.gen != gen or inst.state != _ISSUED:
                continue  # stale event (instruction was reset or squashed)
            inst.state = _DONE
            inst.complete_cycle = self.cycle
            entry = inst.entry
            # Train the predictor at writeback (once per dynamic instance).
            record = entry.record
            if inst.seq not in self._trained:
                if entry.cand_source is not None and record.result is not None:
                    self._trained.add(inst.seq)
                    if record.is_load and hasattr(self.predictor, "update_load"):
                        self.predictor.update_load(entry.pc, record.addr, record.result)
                    else:
                        self.predictor.update(entry.pc, inst.train, record.result)
            if inst.seq == self.fetch_stalled_on:
                self.fetch_stalled_on = None
                self.fetch_resume = max(self.fetch_resume, self.cycle + 1)
            if inst.predicted and not inst.resolved:
                self._try_resolve(inst)
            # A completed value may be the comparison operand some older
            # prediction is waiting on.
            waiters = self._resolution_waiters.pop(inst.seq, None)
            if waiters:
                for pred in waiters:
                    if pred.predicted and not pred.resolved and pred.state == _DONE:
                        self._try_resolve(pred)

    def _try_resolve(self, pred: DynInst) -> None:
        """Resolve a completed prediction once its comparison value (the old
        register mapping) is also available; otherwise wait for it."""
        dep_seq = pred.pred_value_dep
        if dep_seq is not None:
            producer = self.window.get(dep_seq)
            if producer is not None and producer.state != _DONE:
                self._resolution_waiters.setdefault(dep_seq, []).append(pred)
                return
        self._resolve(pred)

    def _resolve(self, pred: DynInst) -> None:
        pred.resolved = True
        self.unresolved_preds.pop(pred.seq, None)
        if pred.pred_correct:
            for consumer in pred.spec_consumers:
                consumer.spec_on.discard(pred.seq)
                if (
                    self.recovery is RecoveryScheme.SELECTIVE
                    and not consumer.spec_on
                    and consumer.state != _WAIT
                    and not consumer.iq_released
                ):
                    self._release_iq(consumer)
            if self.recovery is RecoveryScheme.REISSUE:
                self._reissue_release_scan()
            return

        # ---- misprediction ----
        if self.recovery is RecoveryScheme.REFETCH:
            if pred.first_use is not None:
                self._squash_from(pred.first_use)
                self.stats.value_squashes += 1
            return
        if self.recovery is RecoveryScheme.SELECTIVE:
            for consumer in pred.spec_consumers:
                if consumer.seq not in self.window:
                    continue
                self._repair_and_reset(consumer, pred)
            return
        # REISSUE: everything after the first use replays.
        first = pred.first_use
        for consumer in pred.spec_consumers:
            if consumer.seq in self.window:
                self._repair_deps(consumer, pred)
        if first is not None:
            for inst in self.rob:
                if inst.seq >= first and inst.seq != pred.seq:
                    self._reset_inst(inst)
        self._reissue_release_scan()

    def _repair_and_reset(self, consumer: DynInst, pred: DynInst) -> None:
        self._repair_deps(consumer, pred)
        self._reset_inst(consumer)

    def _repair_deps(self, consumer: DynInst, pred: DynInst) -> None:
        consumer.spec_on.discard(pred.seq)
        for index, true_seq in consumer.dep_fix:
            producer = self.window.get(true_seq)
            if true_seq == pred.seq or (producer is not None and pred.seq in producer.spec_on):
                consumer.deps[index] = true_seq

    def _reset_inst(self, inst: DynInst) -> None:
        if inst.state == _WAIT:
            inst.min_issue = max(inst.min_issue, self.cycle + 1)
            return
        if inst.state == _DONE and inst.seq in self.unresolved_preds:
            pass  # cannot happen: resolution occurs at completion
        inst.state = _WAIT
        inst.gen += 1
        inst.min_issue = max(inst.min_issue, self.cycle + 1)
        inst.complete_cycle = -1
        self.stats.reissued_instructions += 1

    def _held_by_older_prediction(self, inst: DynInst) -> bool:
        return any(seq < inst.seq for seq in self.unresolved_preds)

    def _reissue_release_scan(self) -> None:
        oldest = min(self.unresolved_preds) if self.unresolved_preds else None
        for inst in self.rob:
            if inst.iq_released or inst.state == _WAIT:
                continue
            if oldest is None or inst.seq < oldest:
                self._release_iq(inst)

    # ==================================================================
    # Issue (oldest first, FU-limited)
    # ==================================================================
    def _issue(self) -> None:
        fu_free = {"int": self.config.fu_int, "fp": self.config.fu_fp}
        ldst_free = self.config.fu_ldst
        cycle = self.cycle
        for inst in self.rob:
            if fu_free["int"] <= 0 and fu_free["fp"] <= 0:
                break
            if inst.state != _WAIT:
                continue
            if inst.earliest_issue > cycle or inst.min_issue > cycle:
                continue
            entry = inst.entry
            fu = entry.fu
            if fu == "ldst":
                if ldst_free <= 0 or fu_free["int"] <= 0:
                    continue
            elif fu == "none":
                pass
            elif fu_free[fu] <= 0:
                continue
            if not self._deps_ready(inst):
                continue
            # Issue it.
            if fu == "ldst":
                ldst_free -= 1
                fu_free["int"] -= 1
            elif fu != "none":
                fu_free[fu] -= 1
            latency = entry.base_latency
            if entry.record.is_load and entry.record.addr is not None:
                latency += self.memory.data_latency(entry.record.addr, cycle)
            elif entry.record.inst.is_store and entry.record.addr is not None:
                self.memory.data_latency(entry.record.addr, cycle)
            inst.state = _ISSUED
            done = cycle + max(1, latency)
            self.completions.setdefault(done, []).append((inst, inst.gen))
            # IQ release policy (Section 7.1.1): refetch frees at issue;
            # selective holds the speculative cone; reissue holds everything
            # younger than the oldest unresolved prediction.
            if self.recovery is RecoveryScheme.REFETCH:
                self._release_iq(inst)
            elif self.recovery is RecoveryScheme.SELECTIVE:
                if not inst.spec_on:
                    self._release_iq(inst)
            else:  # REISSUE
                if not self._held_by_older_prediction(inst):
                    self._release_iq(inst)

    def _deps_ready(self, inst: DynInst) -> bool:
        window = self.window
        cycle = self.cycle
        for dep in inst.deps:
            producer = window.get(dep)
            if producer is None:
                continue  # committed (or never in flight): ready
            if producer.state != _DONE or producer.complete_cycle > cycle:
                return False
        return True

    # ==================================================================
    # Dispatch / rename
    # ==================================================================
    def _dispatch(self) -> None:
        dispatched = 0
        pred_ports = self.config.pred_ports if self.config.pred_ports is not None else 1 << 30
        self.stats.iq_occupancy_sum += self.iq_used["int"] + self.iq_used["fp"]
        while self.fetch_queue and dispatched < self.config.fetch_width:
            inst, fetch_cycle = self.fetch_queue[0]
            if fetch_cycle + self._rename_delay > self.cycle:
                break
            if len(self.rob) >= self.config.rob_size:
                self.stats.rob_stall_cycles += 1
                break
            iq = inst.entry.iq
            if self.iq_used[iq] >= getattr(self.config, f"iq_{iq}"):
                self.stats.iq_stall_cycles += 1
                break
            self.fetch_queue.popleft()
            used_port = self._rename(inst, pred_ports > 0)
            if used_port:
                pred_ports -= 1
            self.iq_used[iq] += 1
            inst.iq_released = False
            self.window[inst.seq] = inst
            self.rob.append(inst)
            dispatched += 1

    def _rename(self, inst: DynInst, port_available: bool) -> bool:
        """Resolve dependences, decide on a prediction.  Returns True if an
        extra prediction read port was consumed (non-load predictions)."""
        entry = inst.entry
        window = self.window
        deps: List[int] = []
        dep_fix: List[Tuple[int, int]] = []
        spec_on: Set[int] = set()
        attached: Set[int] = set()

        def add_dep(producer_seq: Optional[int]) -> None:
            if producer_seq is None:
                return
            producer = window.get(producer_seq)
            if producer is None:
                deps.append(producer_seq)
                return
            if producer.predicted and not producer.resolved:
                # Read the *predicted* value: the old physical mapping, i.e.
                # the previous writer's actual output (renaming guarantees it
                # is the real value, whether or not that writer was itself
                # predicted — its execution is never speculative, only its
                # prediction is).
                dep_seq = producer.pred_value_dep
                index = len(deps)
                deps.append(dep_seq if dep_seq is not None else -1)
                dep_fix.append((index, producer_seq))
                spec_on.add(producer_seq)
                if producer_seq not in attached:
                    producer.spec_consumers.append(inst)
                    attached.add(producer_seq)
                if producer.first_use is None:
                    producer.first_use = inst.seq
                # If the old value itself came from a speculative execution,
                # inherit that input-speculation.
                old_producer = window.get(dep_seq) if dep_seq is not None else None
                if old_producer is not None and old_producer.spec_on:
                    _inherit(old_producer)
            else:
                deps.append(producer_seq)
                if producer.spec_on:
                    _inherit(producer)

        def _inherit(producer: DynInst) -> None:
            for pseq in producer.spec_on:
                pending = self.unresolved_preds.get(pseq)
                if pending is not None:
                    spec_on.add(pseq)
                    if pseq not in attached:
                        pending.spec_consumers.append(inst)
                        attached.add(pseq)

        for dep in entry.src_deps:
            add_dep(dep)
        if entry.store_dep is not None:
            add_dep(entry.store_dep)

        # Memory-renaming predictors snoop stores at rename (store-queue
        # forwarding: the value is visible in program order, not at commit).
        record = entry.record
        if record.inst.is_store and record.addr is not None and hasattr(self.predictor, "observe_store"):
            self.predictor.observe_store(entry.pc, record.addr, record.store_value)

        # ---- value prediction decision ----
        used_port = False
        source = entry.cand_source
        if source is not None and entry.record.result is not None:
            inst.train = entry.pred_correct
            predictable = self.predictor.confident(entry.pc)
            value_dep = entry.value_dep
            stored_ok = True
            if source.kind is SourceKind.STORED:
                if getattr(self.predictor, "table_backed", False):
                    stored = self.predictor.stored_value(entry.pc)
                    stored_ok = stored is not None
                    inst.train = stored_ok and stored == entry.record.result
                    value_dep = None
                else:
                    stored_ok = entry.prev_instance is not None
                    value_dep = entry.prev_instance
            # Buffer-based predictors read no register for the prediction;
            # register-based prediction of a non-load needs an extra port.
            needs_port = not entry.record.is_load and not getattr(self.predictor, "table_backed", False)
            if predictable and stored_ok and (not needs_port or port_available):
                inst.predicted = True
                inst.resolved = False
                inst.pred_correct = inst.train
                used_port = needs_port
                # The comparison value (the old mapping, i.e. the previous
                # writer's actual output) gates *resolution*, not execution:
                # the instruction issues on its normal operands and the
                # old-vs-new check completes when both are available (see
                # _complete/_try_resolve).  If the old value was produced by
                # a speculative execution, this prediction inherits that
                # input-speculation.
                inst.pred_value_dep = value_dep
                old_producer = window.get(value_dep) if value_dep is not None else None
                if old_producer is not None and old_producer.spec_on:
                    _inherit(old_producer)
                self.unresolved_preds[inst.seq] = inst

        inst.deps = [d for d in deps if d >= 0]
        # Re-index dep_fix against the filtered list.
        if dep_fix:
            remap: List[Tuple[int, int]] = []
            kept = 0
            for i, d in enumerate(deps):
                for index, true_seq in dep_fix:
                    if index == i and d >= 0:
                        remap.append((kept, true_seq))
                if d >= 0:
                    kept += 1
            inst.dep_fix = remap
        else:
            inst.dep_fix = []
        inst.spec_on = spec_on
        return used_port

    # ==================================================================
    # Fetch
    # ==================================================================
    def _fetch(self) -> None:
        if self.cycle < self.fetch_resume or self.fetch_stalled_on is not None:
            self.stats.fetch_stall_cycles += 1
            return
        if self.fetch_cursor >= len(self.stream):
            return
        fetched = 0
        blocks_left = self.config.fetch_blocks
        last_line: Optional[int] = None
        while (
            fetched < self.config.fetch_width
            and len(self.fetch_queue) < self._fetch_queue_cap
            and self.fetch_cursor < len(self.stream)
        ):
            entry = self.stream[self.fetch_cursor]
            line = entry.pc * 8 // self.config.l1i.line_bytes
            if line != last_line:
                latency = self.memory.fetch_latency(entry.pc, self.cycle)
                if latency > 0:
                    self.fetch_resume = self.cycle + latency
                    break
                last_line = line
            inst = DynInst(entry)
            inst.reset(fetch_cycle=self.cycle)
            inst.earliest_issue = self.cycle + self.config.front_depth
            self.fetch_queue.append((inst, self.cycle))
            self.fetch_cursor += 1
            fetched += 1
            self.stats.fetched += 1

            record = entry.record
            op_kind = record.inst.op.kind
            if record.inst.is_halt:
                break
            if record.inst.is_control:
                taken = bool(record.taken) if op_kind is OpKind.BRANCH else True
                correct = self.branch.predict_and_train(record.inst, taken, record.next_pc)
                if not correct:
                    self.stats.branch_mispredicts += 1
                    self.fetch_stalled_on = entry.seq
                    break
                if taken:
                    blocks_left -= 1
                    if blocks_left <= 0:
                        break
                    last_line = None  # new fetch block may be a new line

    # ==================================================================
    # Refetch squash
    # ==================================================================
    def _squash_from(self, first_seq: int) -> None:
        # Remove squashed instructions from ROB/window/IQ.
        keep: List[DynInst] = []
        for inst in self.rob:
            if inst.seq >= first_seq:
                if not inst.iq_released:
                    self._release_iq(inst)
                inst.gen += 1  # invalidate pending completion events
                del self.window[inst.seq]
                self.unresolved_preds.pop(inst.seq, None)
            else:
                keep.append(inst)
        self.rob = deque(keep)
        self.fetch_queue = deque((inst, fc) for inst, fc in self.fetch_queue if inst.seq < first_seq)
        # Clean prediction bookkeeping that referenced squashed consumers.
        for pred in self.unresolved_preds.values():
            pred.spec_consumers = [c for c in pred.spec_consumers if c.seq < first_seq]
            if pred.first_use is not None and pred.first_use >= first_seq:
                pred.first_use = min((c.seq for c in pred.spec_consumers), default=None)
        for inst in self.rob:
            inst.spec_on = {s for s in inst.spec_on if s in self.unresolved_preds}
        for key in list(self._resolution_waiters):
            kept_waiters = [p for p in self._resolution_waiters[key] if p.seq < first_seq]
            if kept_waiters and key < first_seq:
                self._resolution_waiters[key] = kept_waiters
            else:
                del self._resolution_waiters[key]
        if self.fetch_stalled_on is not None and self.fetch_stalled_on >= first_seq:
            self.fetch_stalled_on = None
        self.fetch_cursor = first_seq
        self.fetch_resume = max(self.fetch_resume, self.cycle + 1)

    # ==================================================================
    # Helpers
    # ==================================================================
    def _release_iq(self, inst: DynInst) -> None:
        if not inst.iq_released:
            inst.iq_released = True
            self.iq_used[inst.entry.iq] -= 1


def simulate(
    trace: Optional[Iterable[TraceRecord]],
    predictor: ValuePredictor,
    config: MachineConfig,
    recovery: RecoveryScheme = RecoveryScheme.SELECTIVE,
    max_cycles: int = 5_000_000,
    engine: Optional[str] = None,
    stream: Optional[Sequence[StreamEntry]] = None,
) -> SimStats:
    """Convenience wrapper: build a pipeline and run it to completion.

    ``trace`` may be any iterable of committed records (cached tuple or live
    generator); it is consumed once during stream preparation.  When a
    pre-built ``stream`` is supplied (the SimSession stream cache), ``trace``
    is unused and may be None.  ``engine`` selects the timing tier
    (``fast``/``reference``; default from ``REPRO_PIPELINE_ENGINE``).
    """
    return PipelineSimulator(
        trace, predictor, config, recovery, engine=engine, stream=stream
    ).run(max_cycles=max_cycles)
