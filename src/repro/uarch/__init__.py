"""Cycle-level out-of-order superscalar microarchitecture model."""

from .branch import BranchPredictor
from .cache import Cache, MemoryHierarchy
from .config import CacheConfig, MachineConfig, aggressive_config, table1_config
from .fast import FastDynInst, FastPipelineSimulator
from .pipeline import PIPELINE_ENGINES, DynInst, PipelineSimulator, simulate
from .recovery import RecoveryScheme
from .stats import SimStats
from .stream import StreamEntry, prepare_stream

__all__ = [
    "BranchPredictor",
    "Cache",
    "MemoryHierarchy",
    "CacheConfig",
    "MachineConfig",
    "aggressive_config",
    "table1_config",
    "DynInst",
    "FastDynInst",
    "FastPipelineSimulator",
    "PIPELINE_ENGINES",
    "PipelineSimulator",
    "simulate",
    "RecoveryScheme",
    "SimStats",
    "StreamEntry",
    "prepare_stream",
]
