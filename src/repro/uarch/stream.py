"""Correct-path dynamic stream preparation for the pipeline simulator.

The pipeline is execution-driven off the functional simulator's committed
trace.  Because register renaming always routes a consumer to the correct
prior writer (the paper's "no stale values" property, Section 1), every
*architectural* quantity the pipeline needs is a pure function of the dynamic
instruction sequence and can be computed in one pass:

* per-operand producer (the last older writer of the register),
* the destination's previous writer (RVP's prediction source),
* the last store to a load's address (memory dependence),
* whether a would-be prediction is correct, for each predictor source kind —
  same-register, correlated-register (dead/live hint), or previous-instance
  (the idealised last-value-reallocation model).

Only *timing* and predictor state (confidence counters, LVP table contents)
remain dynamic; the cycle engine handles those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..isa.opcodes import FuClass, OpKind
from ..profiling.deadness import reg_id
from ..sim.functional import BudgetExceeded
from ..sim.trace import TraceRecord
from ..vp.base import PredictionSource, SourceKind, ValuePredictor


@dataclass(slots=True)
class StreamEntry:
    """One correct-path dynamic instruction with precomputed dependences.

    Like :class:`~repro.sim.trace.TraceRecord`, this is a per-dynamic-
    instruction record held for a whole pipeline run — slotted for footprint.
    """

    seq: int
    record: TraceRecord
    fu: str  # 'int' | 'fp' | 'ldst' | 'none'
    iq: str  # 'int' | 'fp'
    base_latency: int
    src_deps: Tuple[Optional[int], ...]
    store_dep: Optional[int]
    dst_old_writer: Optional[int]
    #: prediction source for this pc (None = not a candidate)
    cand_source: Optional[PredictionSource]
    #: producer of the prediction value (for DST/REG sources)
    value_dep: Optional[int]
    #: previous dynamic instance of this pc (for ideal-LVR STORED sources)
    prev_instance: Optional[int]
    #: would a DST/REG/ideal-STORED prediction be correct here?
    pred_correct: bool
    # ------------------------------------------------------------------
    # Pre-decoded per-pc timing facts (the fast timing tier's hot path
    # reads these flat booleans instead of chasing record.inst.op.* every
    # fetch/issue/commit; the reference tier ignores them).
    # ------------------------------------------------------------------
    is_load: bool = False
    is_store: bool = False
    is_halt: bool = False
    is_control: bool = False
    #: conditional branch (OpKind.BRANCH): fetch reads the recorded outcome
    cond_branch: bool = False
    #: a prediction here would consume an extra register read port
    #: (register-sourced prediction of a non-load; see Section 6)
    needs_port: bool = False
    #: flattened producer seqs (non-None src_deps + store_dep): exactly the
    #: dependence list speculation-free rename produces, pre-built so the
    #: fast tier can alias it without a per-instruction list build
    dep_seqs: Tuple[int, ...] = ()

    @property
    def pc(self) -> int:
        return self.record.pc

    @property
    def inst(self):
        return self.record.inst


def _fu_of(record: TraceRecord) -> Tuple[str, str]:
    op = record.inst.op
    if op.is_mem:
        return "ldst", "fp" if op.fp_dest and op.is_load else "int"
    if op.fu is FuClass.FP:
        return "fp", "fp"
    return "int", "int"


def prepare_stream(
    trace: Iterable[TraceRecord],
    predictor: ValuePredictor,
    max_entries: Optional[int] = None,
) -> List[StreamEntry]:
    """Precompute the pipeline stream for one trace + predictor combination.

    ``trace`` may be any iterable of records — a cached tuple or a live
    :meth:`~repro.sim.functional.FunctionalSimulator.iter_run` generator; it
    is consumed in a single forward pass.

    ``max_entries`` is the campaign layer's instruction-budget guard for the
    streaming case: when the (possibly unbounded) source yields more records
    than the budget, :class:`~repro.sim.functional.BudgetExceeded` is raised
    instead of materializing an arbitrarily large stream.

    Everything that is a pure function of the *static* instruction — FU/IQ
    classification, operand register ids, the destination id, the opcode
    latency, the predictor's prediction source — is computed once per pc and
    memoized, so the per-record loop touches only the dynamic mirrors.
    """
    entries: List[StreamEntry] = []
    append = entries.append
    last_writer: Dict[int, int] = {}
    last_store: Dict[int, int] = {}
    lw_get = last_writer.get
    reg_values: List[int] = [0] * 64
    last_result_of_pc: Dict[int, Tuple[int, int]] = {}  # pc -> (seq, result)
    #: pc -> (fu, iq, latency, read_ids, is_load, is_store, dst, dst_id,
    #:        source, source_reg_id, is_halt, is_control, cond_branch,
    #:        needs_port) — the static facts of one instruction.
    static_cache: Dict[int, Tuple] = {}

    for record in trace:
        if max_entries is not None and len(entries) >= max_entries:
            raise BudgetExceeded(
                f"stream budget exhausted: trace yielded more than {max_entries} "
                f"records (next pc {record.pc})"
            )
        inst = record.inst
        seq = record.seq
        pc = record.pc
        static = static_cache.get(pc)
        if static is None:
            fu, iq = _fu_of(record)
            read_ids = tuple(None if src.is_zero else reg_id(src) for src in inst.reads)
            dst = inst.writes
            dst_id = reg_id(dst) if dst is not None else None
            source = predictor.source(inst)
            source_reg_id = (
                reg_id(source.reg) if source is not None and source.kind is SourceKind.REG else None
            )
            needs_port = (
                source is not None
                and not inst.op.is_load
                and not getattr(predictor, "table_backed", False)
            )
            static = static_cache[pc] = (
                fu, iq, inst.op.latency, read_ids,
                inst.op.is_load, inst.op.is_store, dst, dst_id, source, source_reg_id,
                inst.is_halt, inst.is_control, inst.op.kind is OpKind.BRANCH, needs_port,
            )
        (
            fu, iq, latency, read_ids, is_load, is_store, dst, dst_id, source, source_reg_id,
            is_halt, is_control, cond_branch, needs_port,
        ) = static

        deps = tuple(lw_get(rid) if rid is not None else None for rid in read_ids)
        addr = record.addr
        store_dep = last_store.get(addr) if is_load and addr is not None else None
        dep_seqs = tuple(d for d in deps if d is not None)
        if store_dep is not None:
            dep_seqs += (store_dep,)
        dst_old_writer = lw_get(dst_id) if dst_id is not None else None

        result = record.result
        value_dep: Optional[int] = None
        prev_instance: Optional[int] = None
        pred_correct = False
        if source is not None and result is not None:
            if source.kind is SourceKind.DST:
                value_dep = dst_old_writer
                pred_correct = result == record.old_dest
            elif source.kind is SourceKind.REG:
                value_dep = lw_get(source_reg_id)
                pred_correct = result == reg_values[source_reg_id]
            else:  # STORED
                prev = last_result_of_pc.get(pc)
                if prev is not None:
                    prev_instance = prev[0]
                    pred_correct = result == prev[1]

        append(
            StreamEntry(
                seq=seq,
                record=record,
                fu=fu,
                iq=iq,
                base_latency=latency,
                src_deps=deps,
                store_dep=store_dep,
                dst_old_writer=dst_old_writer,
                cand_source=source,
                value_dep=value_dep,
                prev_instance=prev_instance,
                pred_correct=pred_correct,
                is_load=is_load,
                is_store=is_store,
                is_halt=is_halt,
                is_control=is_control,
                cond_branch=cond_branch,
                needs_port=needs_port,
                dep_seqs=dep_seqs,
            )
        )

        # Advance the mirrors.
        if result is not None:
            if dst_id is not None:
                last_writer[dst_id] = seq
                reg_values[dst_id] = result
            last_result_of_pc[pc] = (seq, result)
        if is_store and addr is not None:
            last_store[addr] = seq
    return entries
