"""Correct-path dynamic stream preparation for the pipeline simulator.

The pipeline is execution-driven off the functional simulator's committed
trace.  Because register renaming always routes a consumer to the correct
prior writer (the paper's "no stale values" property, Section 1), every
*architectural* quantity the pipeline needs is a pure function of the dynamic
instruction sequence and can be computed in one pass:

* per-operand producer (the last older writer of the register),
* the destination's previous writer (RVP's prediction source),
* the last store to a load's address (memory dependence),
* whether a would-be prediction is correct, for each predictor source kind —
  same-register, correlated-register (dead/live hint), or previous-instance
  (the idealised last-value-reallocation model).

Only *timing* and predictor state (confidence counters, LVP table contents)
remain dynamic; the cycle engine handles those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..isa.opcodes import FuClass, OpKind
from ..profiling.deadness import reg_id
from ..sim.trace import TraceRecord
from ..vp.base import PredictionSource, SourceKind, ValuePredictor


@dataclass(slots=True)
class StreamEntry:
    """One correct-path dynamic instruction with precomputed dependences.

    Like :class:`~repro.sim.trace.TraceRecord`, this is a per-dynamic-
    instruction record held for a whole pipeline run — slotted for footprint.
    """

    seq: int
    record: TraceRecord
    fu: str  # 'int' | 'fp' | 'ldst' | 'none'
    iq: str  # 'int' | 'fp'
    base_latency: int
    src_deps: Tuple[Optional[int], ...]
    store_dep: Optional[int]
    dst_old_writer: Optional[int]
    #: prediction source for this pc (None = not a candidate)
    cand_source: Optional[PredictionSource]
    #: producer of the prediction value (for DST/REG sources)
    value_dep: Optional[int]
    #: previous dynamic instance of this pc (for ideal-LVR STORED sources)
    prev_instance: Optional[int]
    #: would a DST/REG/ideal-STORED prediction be correct here?
    pred_correct: bool

    @property
    def pc(self) -> int:
        return self.record.pc

    @property
    def inst(self):
        return self.record.inst


def _fu_of(record: TraceRecord) -> Tuple[str, str]:
    op = record.inst.op
    if op.is_mem:
        return "ldst", "fp" if op.fp_dest and op.is_load else "int"
    if op.fu is FuClass.FP:
        return "fp", "fp"
    return "int", "int"


def prepare_stream(trace: Iterable[TraceRecord], predictor: ValuePredictor) -> List[StreamEntry]:
    """Precompute the pipeline stream for one trace + predictor combination.

    ``trace`` may be any iterable of records — a cached tuple or a live
    :meth:`~repro.sim.functional.FunctionalSimulator.iter_run` generator; it
    is consumed in a single forward pass.
    """
    entries: List[StreamEntry] = []
    last_writer: Dict[int, int] = {}
    last_store: Dict[int, int] = {}
    reg_values: List[int] = [0] * 64
    last_result_of_pc: Dict[int, Tuple[int, int]] = {}  # pc -> (seq, result)
    source_cache: Dict[int, Optional[PredictionSource]] = {}

    for record in trace:
        inst = record.inst
        seq = record.seq
        fu, iq = _fu_of(record)

        deps: List[Optional[int]] = []
        for src in inst.reads:
            deps.append(None if src.is_zero else last_writer.get(reg_id(src)))
        store_dep = last_store.get(record.addr) if record.is_load and record.addr is not None else None

        dst = inst.writes
        dst_old_writer = last_writer.get(reg_id(dst)) if dst is not None else None

        if inst.pc in source_cache:
            source = source_cache[inst.pc]
        else:
            source = predictor.source(inst)
            source_cache[inst.pc] = source

        value_dep: Optional[int] = None
        prev_instance: Optional[int] = None
        pred_correct = False
        if source is not None and record.result is not None:
            if source.kind is SourceKind.DST:
                value_dep = dst_old_writer
                pred_correct = record.result == record.old_dest
            elif source.kind is SourceKind.REG:
                rid = reg_id(source.reg)
                value_dep = last_writer.get(rid)
                pred_correct = record.result == reg_values[rid]
            else:  # STORED
                prev = last_result_of_pc.get(inst.pc)
                if prev is not None:
                    prev_instance = prev[0]
                    pred_correct = record.result == prev[1]

        entries.append(
            StreamEntry(
                seq=seq,
                record=record,
                fu=fu,
                iq=iq,
                base_latency=inst.op.latency,
                src_deps=tuple(deps),
                store_dep=store_dep,
                dst_old_writer=dst_old_writer,
                cand_source=source,
                value_dep=value_dep,
                prev_instance=prev_instance,
                pred_correct=pred_correct,
            )
        )

        # Advance the mirrors.
        if dst is not None and record.result is not None:
            rid = reg_id(dst)
            last_writer[rid] = seq
            reg_values[rid] = record.result
        if record.result is not None:
            last_result_of_pc[inst.pc] = (seq, record.result)
        if inst.is_store and record.addr is not None:
            last_store[record.addr] = seq
    return entries
