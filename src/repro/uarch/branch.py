"""Branch prediction: gshare PHT + BTB + return-address stack (Table 1).

The front end asks :meth:`BranchPredictor.predict` for every control
instruction it fetches; the answer is a (taken, target) pair where ``target``
may be ``None`` ("taken but target unknown" — a BTB miss, treated as a
misfetch).  Outcomes are trained immediately at fetch with the oracle outcome
(the pipeline models misprediction *timing* by stalling fetch until the
branch resolves; wrong-path instructions are not simulated — see DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.instructions import Instruction
from ..isa.opcodes import OpKind
from .config import MachineConfig


class BranchPredictor:
    def __init__(self, config: MachineConfig) -> None:
        self.pht_entries = config.pht_entries
        self.btb_entries = config.btb_entries
        self._pht: List[int] = [1] * config.pht_entries  # 2-bit, weakly not-taken
        self._btb: List[Optional[Tuple[int, int]]] = [None] * config.btb_entries  # (tag, target)
        self._ras: List[int] = []
        self._ras_limit = config.ras_entries
        self._history = 0
        self._history_mask = config.pht_entries - 1
        # statistics
        self.cond_lookups = 0
        self.cond_mispredicts = 0
        self.target_mispredicts = 0

    # ------------------------------------------------------------------
    # Lookup + train (fetch-time, oracle outcome known)
    # ------------------------------------------------------------------
    def predict_and_train(self, inst: Instruction, actual_taken: bool, actual_target: int) -> bool:
        """Returns True if the fetch unit predicted this control transfer
        correctly (direction and target); trains all structures."""
        kind = inst.op.kind
        if kind is OpKind.BRANCH:
            return self._conditional(inst, actual_taken, actual_target)
        if kind is OpKind.JUMP:
            return True  # direct unconditional: decoded target, no penalty
        if kind is OpKind.CALL:
            self._ras_push(inst.pc + 1)
            return True  # direct call: decoded target
        # Indirect: ret predicts via RAS, jmp via BTB.
        if inst.op.name == "ret":
            predicted = self._ras_pop()
            correct = predicted == actual_target
            if not correct:
                self.target_mispredicts += 1
            return correct
        predicted_target = self._btb_lookup(inst.pc)
        self._btb_update(inst.pc, actual_target)
        correct = predicted_target == actual_target
        if not correct:
            self.target_mispredicts += 1
        return correct

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _conditional(self, inst: Instruction, actual_taken: bool, actual_target: int) -> bool:
        self.cond_lookups += 1
        index = (inst.pc ^ self._history) & self._history_mask
        counter = self._pht[index]
        predicted_taken = counter >= 2
        # Train PHT and history with the actual outcome.
        if actual_taken:
            self._pht[index] = min(3, counter + 1)
        else:
            self._pht[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | (1 if actual_taken else 0)) & self._history_mask

        correct = predicted_taken == actual_taken
        if correct and actual_taken:
            # Direction right, but the target must come from the BTB.
            predicted_target = self._btb_lookup(inst.pc)
            self._btb_update(inst.pc, actual_target)
            if predicted_target != actual_target:
                self.target_mispredicts += 1
                return False
        elif actual_taken:
            self._btb_update(inst.pc, actual_target)
        if not correct:
            self.cond_mispredicts += 1
        return correct

    def _btb_lookup(self, pc: int) -> Optional[int]:
        entry = self._btb[pc % self.btb_entries]
        if entry is not None and entry[0] == pc:
            return entry[1]
        return None

    def _btb_update(self, pc: int, target: int) -> None:
        self._btb[pc % self.btb_entries] = (pc, target)

    def _ras_push(self, return_pc: int) -> None:
        if len(self._ras) >= self._ras_limit:
            self._ras.pop(0)
        self._ras.append(return_pc)

    def _ras_pop(self) -> Optional[int]:
        if self._ras:
            return self._ras.pop()
        return None
