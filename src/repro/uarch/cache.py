"""Set-associative LRU caches (Table 1 hierarchy) with fill latency.

Latency-only model: an access returns the number of *additional* cycles
beyond the pipeline's base load-use latency.  A miss starts a line fill that
completes ``miss_penalty`` (plus any lower-level penalty) cycles later;
subsequent accesses to the same line before the fill completes wait for it
(MSHR-style merging) rather than hitting instantly.  Bandwidth contention is
not modelled, matching the level of detail value-prediction studies of this
era used for their memory systems.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .config import CacheConfig


class Cache:
    """One cache level: set-associative, true-LRU, allocate-on-miss."""

    def __init__(self, config: CacheConfig, parent: Optional["Cache"] = None) -> None:
        if config.line_bytes & (config.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        self.config = config
        self.parent = parent
        self.num_sets = config.size_bytes // (config.line_bytes * config.assoc)
        if self.num_sets < 1:
            raise ValueError("cache too small for its associativity")
        self._line_shift = config.line_bytes.bit_length() - 1
        # Per set: list of line ids in LRU order (index 0 = least recent).
        # Lazily materialized — None until the set is first touched, so
        # constructing a large cache is O(1)-ish rather than one list
        # allocation per set (the L2 alone has thousands of sets).
        self._sets: List[Optional[List[int]]] = [None] * self.num_sets
        # In-flight fills: line id -> cycle the data arrives.
        self._fill_ready: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr >> self._line_shift
        return line % self.num_sets, line

    def access(self, addr: int, cycle: int = 0) -> int:
        """Returns additional latency in cycles for an access at ``cycle``."""
        set_index, line = self._locate(addr)
        ways = self._sets[set_index]
        if ways is None:
            ways = self._sets[set_index] = []
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.hits += 1
            ready = self._fill_ready.get(line)
            if ready is None:
                return 0
            if ready <= cycle:
                del self._fill_ready[line]
                return 0
            return ready - cycle  # merge into the outstanding fill
        self.misses += 1
        penalty = self.config.miss_penalty
        if self.parent is not None:
            penalty += self.parent.access(addr, cycle)
        ways.append(line)
        self._fill_ready[line] = cycle + penalty
        if len(ways) > self.config.assoc:
            evicted = ways.pop(0)
            self._fill_ready.pop(evicted, None)
        return penalty

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class MemoryHierarchy:
    """L1I + L1D sharing an L2, per Table 1."""

    def __init__(self, l1i: CacheConfig, l1d: CacheConfig, l2: CacheConfig) -> None:
        self.l2 = Cache(l2)
        self.l1i = Cache(l1i, parent=self.l2)
        self.l1d = Cache(l1d, parent=self.l2)

    def fetch_latency(self, pc: int, cycle: int = 0) -> int:
        """Extra cycles to fetch the line holding instruction ``pc``
        (instructions are 8 bytes in this word-addressed ISA)."""
        return self.l1i.access(pc * 8, cycle)

    def data_latency(self, addr: int, cycle: int = 0) -> int:
        return self.l1d.access(addr, cycle)
