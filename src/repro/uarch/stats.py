"""Pipeline statistics: IPC plus the prediction coverage/accuracy of Table 2."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class SimStats:
    """Counters accumulated over one pipeline run."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    # Value prediction
    predictions: int = 0
    correct_predictions: int = 0
    value_squashes: int = 0  # refetch squash events
    reissued_instructions: int = 0
    # Branches
    branch_mispredicts: int = 0
    # Memory
    l1d_misses: int = 0
    l1i_misses: int = 0
    # Stall attribution (cycles)
    fetch_stall_cycles: int = 0  # fetch blocked on redirect/unresolved branch
    iq_stall_cycles: int = 0  # dispatch blocked: instruction queue full
    rob_stall_cycles: int = 0  # dispatch blocked: reorder buffer full
    iq_occupancy_sum: int = 0  # summed int+fp IQ occupancy per cycle

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of committed instructions that were value-predicted."""
        return self.predictions / self.committed if self.committed else 0.0

    @property
    def accuracy(self) -> float:
        return self.correct_predictions / self.predictions if self.predictions else 0.0

    @property
    def predictions_per_cycle(self) -> float:
        return self.predictions / self.cycles if self.cycles else 0.0

    def counters(self) -> Dict[str, int]:
        """Every raw counter field by name (no derived ratios).

        This is the exact contract the fast timing tier is held to: two
        engines are equivalent iff their ``counters()`` dicts are equal —
        cycle counts, stall attribution and occupancy included, not just IPC.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "branch_mispredicts": self.branch_mispredicts,
            "value_squashes": self.value_squashes,
        }
