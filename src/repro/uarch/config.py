"""Machine configurations (paper Table 1 and the Section 7.4 16-wide machine).

Table 1 parameters::

    Inst queue size    32 int, 32 fp
    Functional units   6 integer (4 can perform loads/stores); 3 fp
    Pipeline           9 stages, 7-cycle branch mispredict
    Branch prediction  256-entry BTB, 2K x 2-bit PHT, gshare
    Fetch bandwidth    Eight instructions
    L1 I-cache         32KB, 4-way SA, 64-byte lines; 20-cycle miss penalty
    L1 D-cache         32KB, 4-way SA, 64-byte lines; 20-cycle miss penalty
    L2 cache           512KB, 2-way SA, 64-byte lines; 80-cycle miss penalty

The Section 7.4 machine doubles "the instruction queue entries, functional
units, renaming registers, and fetch bandwidth" and "has the ability to fetch
up to three basic blocks per cycle".

The 9-stage pipeline is modelled as a front-end depth: an instruction fetched
in cycle F can issue no earlier than F + ``front_depth``; a branch therefore
resolves no earlier than F + ``front_depth`` + 1, and fetch redirects the
cycle after resolution — reproducing the 7-cycle minimum misprediction
penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    assoc: int
    line_bytes: int
    miss_penalty: int  # added cycles on miss (to the next level)


@dataclass(frozen=True)
class MachineConfig:
    name: str = "table1"
    # Front end
    fetch_width: int = 8
    fetch_blocks: int = 1  # predicted-taken branches followable per cycle
    front_depth: int = 6  # fetch -> earliest issue (models the 9-stage pipe)
    # Window
    iq_int: int = 32
    iq_fp: int = 32
    #: total in-flight instructions, bounded by the renaming registers (the
    #: paper's SMT-derived simulator windows on renaming registers, not a
    #: small ROB; Section 7.4 doubles them).  With a roomy in-flight limit the
    #: 32-entry instruction queues are the binding structure, which is the
    #: regime all of Section 7 analyses.
    rob_size: int = 200
    rename_regs: int = 100  # renaming registers per file
    # Execution
    fu_int: int = 6
    fu_ldst: int = 4  # subset of the integer units that can do memory ops
    fu_fp: int = 3
    commit_width: int = 8
    # Value prediction plumbing.  The paper measures <0.2-0.5 predictions per
    # cycle and argues one extra register read port would suffice rather than
    # modelling a limit; None reproduces that (unlimited).  Set an integer to
    # study port pressure (only register-based predictors of non-load
    # instructions consume a port; buffer-based LVP reads no register).
    pred_ports: Optional[int] = None
    # Branch prediction
    btb_entries: int = 256
    pht_entries: int = 2048
    ras_entries: int = 16
    # Memory hierarchy
    l1i: CacheConfig = CacheConfig(32 * 1024, 4, 64, 20)
    l1d: CacheConfig = CacheConfig(32 * 1024, 4, 64, 20)
    l2: CacheConfig = CacheConfig(512 * 1024, 2, 64, 80)

    def validate(self) -> None:
        if self.fu_ldst > self.fu_int:
            raise ValueError("load/store units are a subset of the integer units")
        if self.fetch_width < 1 or self.commit_width < 1:
            raise ValueError("widths must be positive")


def table1_config() -> MachineConfig:
    """The paper's next-generation 8-issue processor (Table 1)."""
    cfg = MachineConfig()
    cfg.validate()
    return cfg


def aggressive_config() -> MachineConfig:
    """The Section 7.4 16-wide machine: double queues, FUs, renaming
    registers and fetch bandwidth; up to three basic blocks per cycle."""
    cfg = replace(
        table1_config(),
        name="aggressive16",
        fetch_width=16,
        fetch_blocks=3,
        iq_int=64,
        iq_fp=64,
        rob_size=400,
        rename_regs=200,
        fu_int=12,
        fu_ldst=8,
        fu_fp=6,
        commit_width=16,
    )
    cfg.validate()
    return cfg
