"""Trace-JIT execution tier: hot basic blocks compiled to Python source.

The decoded engine (PR 4) pays one closure dispatch per instruction.  This
tier stitches each *hot basic block* into one **superinstruction**: a Python
function generated from the block's instructions, ``compile()``d once per
Program, with every operand slot, immediate and branch condition inlined as
constants.  Executing a block of k instructions then costs one Python call
instead of k dispatches, and CPython folds the straight-line statements into
one code object with no interpreter-loop round trips between them.

Discipline (why this stays byte-identical to the decoded engine):

* **Blocks are straight-line.**  ``Program.basic_blocks`` guarantees control
  flow and halts only in a block's final slot, so a superinstruction is a
  statement list plus one terminal ``return next_pc`` (``-1`` for halt).
* **Hotness threshold.**  A block head must be entered
  :data:`JIT_THRESHOLD` times (``REPRO_JIT_THRESHOLD``) before its source is
  generated and compiled; cold blocks and non-head pcs (e.g. a computed jump
  into the middle of a block) run on the decoded handler table.  Counters
  persist on the memoized :class:`JitProgram`, so hotness carries across
  runs of the same program — results never depend on it, only compile time.
* **Budget guard.**  A superinstruction is dispatched only when the whole
  block fits the remaining instruction budget (``executed + len(block) <=
  max_instructions``); otherwise the engine falls back to single decoded
  steps, so a budget exhausted mid-block leaves *exactly* the same state and
  commit count as the decoded engine.
* **Guard exits on faults.**  Every generated block body runs under a
  ``try``/``except`` that records the index of the faulting instruction;
  since the block is straight-line, the faulting pc is ``start + index`` and
  the commit count advances by ``index`` — identical to decoded-engine fault
  fidelity (same exception, same ``state.pc``, same commit count).

The reference engine remains the oracle: the trace-equivalence fuzz oracle
cross-checks this tier on every generated program (full run and a truncated
run that forces guard exits), and the golden engine matrix pins it against
reference/decoded/batched on every workload variant.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.opcodes import MASK64, SIGN_BIT, OpKind, _ALU_FNS
from ..isa.program import Program
from .decoded import decode

__all__ = ["JIT_THRESHOLD", "JitProgram", "jit_decode"]

#: Block-entry count after which a basic block is compiled.
JIT_THRESHOLD = int(os.environ.get("REPRO_JIT_THRESHOLD", "16"))

#: Mutation seam for the fuzz-oracle self-test: when True, the budget guard
#: is skipped and a hot superinstruction is dispatched even when the block
#: no longer fits the remaining budget (a seeded guard-exit defect — the
#: run overcommits past ``max_instructions`` — that the jit oracle leg's
#: truncated-run comparison must catch).
_TEST_SKIP_BUDGET_GUARD = False

_FN_NAME = {fn: name for name, fn in _ALU_FNS.items()}

#: ALU semantics inlined as Python expressions (a/b are operand exprs).
#: Only ops whose Python-int expression is exactly the reference ``alu_fn``
#: are here; everything else calls the bound helper.
_INLINE_EXPRS = {
    "add": "({a} + {b}) & {m}",
    "sub": "({a} - {b}) & {m}",
    "mul": "({a} * {b}) & {m}",
    "and": "({a} & {b}) & {m}",
    "or": "({a} | {b}) & {m}",
    "xor": "({a} ^ {b}) & {m}",
    "sll": "({a} << ({b} & 63)) & {m}",
    "srl": "(({a} & {m}) >> ({b} & 63))",
    "mov": "({a}) & {m}",
    "cmpeq": "(1 if ({a}) == ({b}) else 0)",
    "cmpne": "(1 if ({a}) != ({b}) else 0)",
    "cmpult": "(1 if ({a}) < ({b}) else 0)",
}

#: Flat branch conditions on the unsigned test value, as source templates.
_COND_EXPRS = {
    "beq": "{v} == 0",
    "bne": "{v} != 0",
    "blt": "{v} >= {sb}",
    "ble": "({v} == 0 or {v} >= {sb})",
    "bgt": "(0 < {v} < {sb})",
    "bge": "{v} < {sb}",
    "fbeq": "{v} == 0",
    "fbne": "{v} != 0",
}


def _reg_expr(reg) -> str:
    bank = "F" if reg.is_fp else "I"
    return f"{bank}[{reg.index}]"


def _block_source(program: Program, start: int, end: int) -> Tuple[str, List]:
    """Generate the ``_bind`` source for the block ``[start, end)``.

    Returns ``(source, helpers)`` where ``helpers`` are the Python callables
    the generated code references as ``_h0, _h1, ...`` (non-inlinable alu
    fns, bound once at block-bind time).
    """
    m = str(MASK64)
    sb = str(SIGN_BIT)
    helpers: List = []
    lines: List[str] = []

    def helper(fn) -> str:
        helpers.append(fn)
        return f"_h{len(helpers) - 1}"

    for k, pc in enumerate(range(start, end)):
        inst = program[pc]
        op = inst.op
        kind = op.kind
        terminal = pc == end - 1
        stmts: List[str] = []

        if kind is OpKind.ALU:
            sem = _FN_NAME.get(op.alu_fn)
            dst = inst.writes
            s1, s2 = inst.src1, inst.src2
            if s1 is None:  # li / fli: decode-time constant
                imm = inst.imm if inst.imm is not None else 0
                if dst is not None:
                    stmts.append(f"{_reg_expr(dst)} = {op.alu_fn(0, imm) & MASK64}")
            elif dst is None:
                # Computed, architecturally dropped: alu fns cannot fault,
                # so a dropped-dest ALU op is a no-op here (the decoded
                # engine computes and discards; observable state is equal).
                pass
            else:
                a = _reg_expr(s1)
                b = _reg_expr(s2) if s2 is not None else str(
                    inst.imm if inst.imm is not None else 0
                )
                tpl = _INLINE_EXPRS.get(sem or "")
                if tpl is not None:
                    expr = tpl.format(a=a, b=b, m=m)
                else:
                    expr = f"({helper(op.alu_fn)}({a}, {b}) & {m})"
                stmts.append(f"{_reg_expr(dst)} = {expr}")

        elif kind is OpKind.LOAD:
            base = _reg_expr(inst.src1)
            off = inst.imm or 0
            dst = inst.writes
            stmts.append(f"_a = ({base} + {off}) & {m}")
            stmts.append("if _a & 7:")
            stmts.append(
                "    raise ValueError(f\"unaligned access at address {_a:#x}\")"
            )
            if dst is not None:
                stmts.append(f"{_reg_expr(dst)} = MG(_a >> 3)")
            else:
                stmts.append("MG(_a >> 3)")

        elif kind is OpKind.STORE:
            base = _reg_expr(inst.src1)
            off = inst.imm or 0
            stmts.append(f"_a = ({base} + {off}) & {m}")
            stmts.append("if _a & 7:")
            stmts.append(
                "    raise ValueError(f\"unaligned access at address {_a:#x}\")"
            )
            stmts.append(f"MP(_a >> 3, {_reg_expr(inst.src2)})")

        elif kind is OpKind.BRANCH:
            cond = _COND_EXPRS[op.name].format(v=_reg_expr(inst.src1), sb=sb)
            stmts.append(f"return {inst.target_pc} if {cond} else {pc + 1}")

        elif kind is OpKind.JUMP:
            stmts.append(f"return {inst.target_pc}")

        elif kind is OpKind.CALL:
            if inst.writes is not None:
                stmts.append(f"{_reg_expr(inst.writes)} = {pc + 1}")
            stmts.append(f"return {inst.target_pc}")

        elif kind is OpKind.INDIRECT:
            stmts.append(f"return {_reg_expr(inst.src1)}")

        elif kind is OpKind.HALT:
            stmts.append("return -1")

        # NOP: no statements.

        if terminal and (not stmts or not stmts[-1].startswith("return")):
            stmts.append(f"return {end}")

        lines.append(f"            n = {k}")
        for s in stmts:
            lines.append(f"            {s}")

    unpack = ""
    if helpers:
        names = ", ".join(f"_h{j}" for j in range(len(helpers)))
        trailer = "," if len(helpers) == 1 else ""
        unpack = f"    {names}{trailer} = H\n"

    src = (
        "def _bind(I, F, MG, MP, cell, H):\n"
        f"{unpack}"
        "    def _block():\n"
        "        n = 0\n"
        "        try:\n"
        + "\n".join(lines)
        + "\n"
        "        except BaseException:\n"
        "            cell[0] = n\n"
        "            raise\n"
        "    return _block\n"
    )
    return src, helpers


def _compile_block(program: Program, start: int, end: int) -> Callable:
    """Compile block ``[start, end)``; returns ``binder(I, F, MG, MP, cell)``."""
    src, helpers = _block_source(program, start, end)
    code = compile(src, f"<jit:{program.name}@{start}>", "exec")
    glb: Dict[str, object] = {"ValueError": ValueError, "BaseException": BaseException}
    ns: Dict[str, object] = {}
    exec(code, glb, ns)
    bind_fn = ns["_bind"]
    H = tuple(helpers)

    def binder(I, F, MG, MP, cell):  # noqa: E741 - I mirrors int_regs
        return bind_fn(I, F, MG, MP, cell, H)

    return binder


class JitProgram:
    """Once-per-program JIT state: block map, hotness counters, code cache.

    ``head_len[pc]`` is the block length when ``pc`` heads a multi-instruction
    basic block, else 0.  ``counts`` accumulates block entries across runs;
    a block is compiled (lazily, once) when its count crosses
    :data:`JIT_THRESHOLD`.  Obtain via :func:`jit_decode`, which memoizes the
    instance on the program like the decoded cache.
    """

    __slots__ = ("program", "head_len", "counts", "_binders", "blocks_compiled")

    def __init__(self, program: Program) -> None:
        self.program = program
        self.head_len = [0] * len(program)
        for proc in program.procedures:
            for block in program.basic_blocks(proc):
                if block.end - block.start >= 2:
                    self.head_len[block.start] = block.end - block.start
        self.counts: Dict[int, int] = {}
        self._binders: Dict[int, Callable] = {}
        self.blocks_compiled = 0

    def binder(self, pc: int) -> Callable:
        b = self._binders.get(pc)
        if b is None:
            b = _compile_block(self.program, pc, pc + self.head_len[pc])
            self._binders[pc] = b
            self.blocks_compiled += 1
            from ..core.metrics import get_metrics

            get_metrics().inc("sim.jit_blocks_compiled")
        return b


def jit_decode(program: Program) -> JitProgram:
    """JIT-decode ``program`` once; repeated calls return the cached instance."""
    cached: Optional[JitProgram] = getattr(program, "_jit_cache", None)
    if cached is None:
        cached = JitProgram(program)
        program._jit_cache = cached  # type: ignore[attr-defined]
    return cached


def run_jit_fast(sim, max_instructions: int) -> None:
    """Fast no-observer run loop for ``FunctionalSimulator(engine="jit")``.

    Mirrors the decoded fast path's contract exactly: sets
    ``sim.last_result``, preserves ``state.pc`` fault fidelity, enforces the
    budget via ``sim._check_budget`` and bumps the same metrics family.
    """
    from ..core.metrics import get_metrics
    from .functional import RunResult, SimulationError

    program = sim.program
    state = sim.state
    memory = sim.memory
    jp = jit_decode(program)
    decoded = decode(program)
    handlers = decoded.bind_fast(state, memory)
    head_len = jp.head_len
    counts = jp.counts
    threshold = JIT_THRESHOLD
    n = len(program)
    name = program.name

    # Per-run bindings of already-hot compiled blocks (bound lazily: most
    # runs touch a fraction of the program).
    I = state.int_regs  # noqa: E741 - mirrors the generated operand names
    F = state.fp_regs
    MG = memory.load_word_index
    MP = memory.store_word_index
    cell = [0]
    bound: Dict[int, Callable] = {}

    pc = state.pc
    executed = 0
    halted = False
    try:
        while executed < max_instructions:
            if not 0 <= pc < n:
                raise SimulationError(f"pc {pc} out of range (program {name})")
            blen = head_len[pc]
            if blen:
                fn = bound.get(pc)
                if fn is None:
                    c = counts.get(pc, 0) + 1
                    counts[pc] = c
                    if c >= threshold:
                        fn = bound[pc] = jp.binder(pc)(I, F, MG, MP, cell)
                if fn is not None and (
                    executed + blen <= max_instructions or _TEST_SKIP_BUDGET_GUARD
                ):
                    try:
                        nxt = fn()
                    except BaseException:
                        # Straight-line block: cell[0] commits happened
                        # before the faulting instruction at start+cell[0].
                        executed += cell[0]
                        pc = pc + cell[0]
                        raise
                    executed += blen
                    if nxt < 0:
                        # Halt only ever terminates a block; the reference
                        # engine leaves pc on the halt instruction itself.
                        pc = pc + blen - 1
                        halted = True
                        break
                    pc = nxt
                    continue
            # Cold block, mid-block entry, or the block no longer fits the
            # budget: one decoded step (the guard exit).
            nxt = handlers[pc]()
            executed += 1
            if nxt < 0:
                halted = True
                break
            pc = nxt
    finally:
        state.pc = pc
        sim.last_result = RunResult(
            state=state,
            memory=memory,
            instructions=executed,
            halted=halted,
            trace=None,
        )
        metrics = get_metrics()
        metrics.inc("sim.runs")
        metrics.inc("sim.runs_jit")
        metrics.inc("sim.instructions", executed)

    sim._check_budget(halted, executed, max_instructions, pc)
