"""Architectural machine state: register files + pc."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa.opcodes import MASK64
from ..isa.registers import FP, INT, NUM_FP_REGS, NUM_INT_REGS, Reg


class ArchState:
    """Architectural state shared by the functional and pipeline simulators.

    Reads of ``r31``/``f31`` always return 0; writes to them are discarded.
    """

    def __init__(self) -> None:
        self.int_regs: List[int] = [0] * NUM_INT_REGS
        self.fp_regs: List[int] = [0] * NUM_FP_REGS
        self.pc: int = 0

    def read(self, reg: Reg) -> int:
        if reg.is_zero:
            return 0
        bank = self.int_regs if reg.kind == INT else self.fp_regs
        return bank[reg.index]

    def write(self, reg: Reg, value: int) -> None:
        if reg.is_zero:
            return
        bank = self.int_regs if reg.kind == INT else self.fp_regs
        bank[reg.index] = value & MASK64

    def snapshot(self) -> Dict[Reg, int]:
        """All nonzero register values, for debugging and state comparison."""
        from ..isa.registers import F, R

        values: Dict[Reg, int] = {}
        for i, value in enumerate(self.int_regs):
            if value and i != 31:
                values[R[i]] = value
        for i, value in enumerate(self.fp_regs):
            if value and i != 31:
                values[F[i]] = value
        return values

    def copy(self) -> "ArchState":
        clone = ArchState()
        clone.int_regs = list(self.int_regs)
        clone.fp_regs = list(self.fp_regs)
        clone.pc = self.pc
        return clone

    def state_equal(self, other: "ArchState") -> bool:
        """Register-file equality (pc excluded; zero registers always equal)."""
        return self.int_regs[:31] == other.int_regs[:31] and self.fp_regs[:31] == other.fp_regs[:31]
