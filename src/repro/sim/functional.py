"""Execution-driven functional (architectural) simulator.

This is both (a) the trace generator feeding all profilers and the Figure 1
reuse analysis, and (b) the golden reference for co-simulating the pipeline:
whatever prediction or recovery scheme the pipeline uses, its committed
architectural state must match this interpreter's.

Two execution engines share this class:

* the **decoded** engine (default) — the pre-decoded threaded-code core from
  :mod:`repro.sim.decoded`: each static instruction is compiled once into a
  specialized handler closure, and :meth:`FunctionalSimulator.iter_run` /
  :meth:`FunctionalSimulator.run` dispatch the handler table in a tight,
  locals-hoisted loop.  ``run(collect_trace=False)`` with no observers takes
  a further fast path that allocates no :class:`TraceRecord` at all.
* the **reference** engine — :meth:`FunctionalSimulator.step`, the original
  decode-every-time interpreter.  It is kept verbatim as the correctness
  oracle: golden tests and the ``trace-equivalence`` fuzz oracle assert the
  decoded engine reproduces its records, final state and memory bit for bit.
  Select it globally with ``REPRO_SIM_ENGINE=reference``.

Observers receive each :class:`TraceRecord` as it commits and may also inspect
the live :class:`ArchState` (the record is delivered *after* the architectural
write, with the prior destination value preserved in ``record.old_dest``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from ..isa.instructions import Instruction
from ..isa.opcodes import OpKind
from ..isa.program import Program
from .decoded import decode
from .machine import ArchState
from .memory import Memory
from .trace import TraceRecord

Observer = Callable[[TraceRecord, ArchState], None]

#: Engine used when a simulator is built without an explicit choice.
#: ``decoded`` (threaded-code core), ``reference`` (the step() oracle),
#: ``jit`` (hot-block superinstructions, :mod:`repro.sim.jit`) or
#: ``batched`` (single-lane view of the vectorized tier,
#: :mod:`repro.sim.batched`).
DEFAULT_ENGINE = os.environ.get("REPRO_SIM_ENGINE", "decoded")

_ENGINES = ("decoded", "reference", "jit", "batched")


def _metrics():
    # Imported lazily: repro.core imports repro.sim at package-init time, so a
    # module-level import here would be circular.
    from ..core.metrics import get_metrics

    return get_metrics()


class SimulationError(RuntimeError):
    """Raised for runaway or malformed execution (pc out of range, no halt)."""


class BudgetExceeded(SimulationError):
    """A run committed its full instruction budget without halting.

    Raised only by simulators built with ``strict_budget=True`` — the default
    keeps the historical semantics (truncate at the budget, ``halted=False``),
    which profiling and the paper's fixed-budget measurements rely on.  The
    campaign layer (:mod:`repro.runtime`) derives per-cell wall-clock
    deadlines from ``max_instructions``; this guard is the in-process
    counterpart, turning a runaway program into a deterministic, classifiable
    fault instead of a hung worker.
    """


@dataclass
class RunResult:
    """Outcome of a functional run."""

    state: ArchState
    memory: Memory
    instructions: int
    halted: bool
    trace: Optional[List[TraceRecord]] = None


class FunctionalSimulator:
    """Interprets a :class:`Program` against an :class:`ArchState` + :class:`Memory`."""

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        state: Optional[ArchState] = None,
        engine: Optional[str] = None,
        strict_budget: bool = False,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.state = state if state is not None else ArchState()
        self.state.pc = program.entry
        self.engine = engine if engine is not None else DEFAULT_ENGINE
        #: raise :class:`BudgetExceeded` instead of truncating at the budget.
        self.strict_budget = strict_budget
        if self.engine not in _ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; choose from {_ENGINES}")
        self._observers: List[Observer] = []
        #: trace-less :class:`RunResult` of the most recent (streamed) run.
        self.last_result: Optional[RunResult] = None

    def add_observer(self, observer: Observer) -> None:
        self._observers.append(observer)

    def _check_budget(self, halted: bool, executed: int, max_instructions: int, pc: int) -> None:
        """Raise :class:`BudgetExceeded` when a strict run exhausts its budget.

        Called after a commit loop falls off the end; identical for both
        engines so the decoded core faults exactly where the oracle would.
        """
        if self.strict_budget and not halted and executed >= max_instructions:
            raise BudgetExceeded(
                f"instruction budget exhausted: program {self.program.name!r} committed "
                f"{executed} instructions without halting (budget {max_instructions}, pc {pc})"
            )

    # ------------------------------------------------------------------
    # Reference engine (the oracle) — decodes every dynamic instruction
    # ------------------------------------------------------------------
    def step(self, seq: int) -> Tuple[TraceRecord, bool]:
        """Execute one instruction; returns (record, halted).

        This is the *reference* interpreter, deliberately unoptimized: the
        decoded engine must match it record for record (see
        ``tests/test_sim_decoded.py``), so any change here must be mirrored
        in :mod:`repro.sim.decoded`.
        """
        state = self.state
        pc = state.pc
        if not 0 <= pc < len(self.program):
            raise SimulationError(f"pc {pc} out of range (program {self.program.name})")
        inst = self.program[pc]
        op = inst.op
        kind = op.kind
        next_pc = pc + 1
        result: Optional[int] = None
        old_dest: Optional[int] = None
        addr: Optional[int] = None
        store_value: Optional[int] = None
        taken: Optional[bool] = None
        halted = False
        src_values: Tuple[int, ...] = ()

        if kind is OpKind.ALU:
            a = state.read(inst.src1) if inst.src1 is not None else 0
            if inst.src2 is not None:
                b = state.read(inst.src2)
                src_values = (a, b)
            else:
                b = inst.imm if inst.imm is not None else 0
                src_values = (a,) if inst.src1 is not None else ()
            result = op.alu_fn(a, b)  # type: ignore[misc]
        elif kind is OpKind.LOAD:
            base = state.read(inst.src1)
            src_values = (base,)
            addr = (base + (inst.imm or 0)) & ((1 << 64) - 1)
            result = self.memory.load(addr)
        elif kind is OpKind.STORE:
            base = state.read(inst.src1)
            value = state.read(inst.src2)
            src_values = (base, value)
            addr = (base + (inst.imm or 0)) & ((1 << 64) - 1)
            store_value = value
            self.memory.store(addr, value)
        elif kind is OpKind.BRANCH:
            test = state.read(inst.src1)
            src_values = (test,)
            taken = op.cond_fn(test)  # type: ignore[misc]
            if taken:
                next_pc = inst.target_pc  # type: ignore[assignment]
        elif kind is OpKind.JUMP:
            next_pc = inst.target_pc  # type: ignore[assignment]
        elif kind is OpKind.CALL:
            result = pc + 1
            next_pc = inst.target_pc  # type: ignore[assignment]
        elif kind is OpKind.INDIRECT:
            target = state.read(inst.src1)
            src_values = (target,)
            next_pc = target
        elif kind is OpKind.HALT:
            halted = True
            next_pc = pc
        # NOP falls through with no effects.

        if result is not None and inst.writes is not None:
            old_dest = state.read(inst.writes)
            state.write(inst.writes, result)
        elif result is not None:
            # Write to a zero register: result computed, architecturally dropped.
            old_dest = 0

        state.pc = next_pc
        record = TraceRecord(
            seq=seq,
            pc=pc,
            inst=inst,
            next_pc=next_pc,
            result=result,
            old_dest=old_dest,
            src_values=src_values,
            addr=addr,
            store_value=store_value,
            taken=taken,
        )
        return record, halted

    def iter_run_reference(self, max_instructions: int = 1_000_000) -> Iterator[TraceRecord]:
        """Stream a run through the reference :meth:`step` loop (the oracle)."""
        observers = self._observers
        halted = False
        executed = 0
        try:
            for seq in range(max_instructions):
                record, halted = self.step(seq)
                executed += 1
                for observer in observers:
                    observer(record, self.state)
                yield record
                if halted:
                    break
            self._check_budget(halted, executed, max_instructions, self.state.pc)
        finally:
            self.last_result = RunResult(
                state=self.state, memory=self.memory, instructions=executed, halted=halted, trace=None
            )
            metrics = _metrics()
            metrics.inc("sim.runs")
            metrics.inc("sim.instructions", executed)

    def run_reference(self, max_instructions: int = 1_000_000, collect_trace: bool = False) -> RunResult:
        """Eager wrapper over :meth:`iter_run_reference` (the oracle loop)."""
        return self._drain(self.iter_run_reference(max_instructions=max_instructions), collect_trace)

    # ------------------------------------------------------------------
    # Decoded engine — pre-bound handler table, locals-hoisted dispatch
    # ------------------------------------------------------------------
    def _iter_run_decoded(self, max_instructions: int) -> Iterator[TraceRecord]:
        state = self.state
        decoded = decode(self.program)
        handlers = decoded.bind_trace(state, self.memory)
        halt_flags = decoded.halt_flags
        observers = self._observers
        name = self.program.name
        n = len(handlers)
        pc = state.pc
        executed = 0
        halted = False
        try:
            if observers:
                for seq in range(max_instructions):
                    if not 0 <= pc < n:
                        raise SimulationError(f"pc {pc} out of range (program {name})")
                    record = handlers[pc](seq)
                    executed += 1
                    for observer in observers:
                        observer(record, state)
                    yield record
                    if halt_flags[pc]:
                        halted = True
                        break
                    pc = record.next_pc
            else:
                for seq in range(max_instructions):
                    if not 0 <= pc < n:
                        raise SimulationError(f"pc {pc} out of range (program {name})")
                    record = handlers[pc](seq)
                    executed += 1
                    yield record
                    if halt_flags[pc]:
                        halted = True
                        break
                    pc = record.next_pc
            self._check_budget(halted, executed, max_instructions, pc)
        finally:
            self.last_result = RunResult(
                state=state, memory=self.memory, instructions=executed, halted=halted, trace=None
            )
            metrics = _metrics()
            metrics.inc("sim.runs")
            metrics.inc("sim.runs_traced")
            metrics.inc("sim.instructions", executed)

    def _run_fast(self, max_instructions: int) -> None:
        """No-observer, no-record dispatch: architectural effects only.

        Sets :attr:`last_result`; allocates nothing per dynamic instruction
        (no :class:`TraceRecord`, no tuples), which is what makes trace-less
        consumers cheap.
        """
        state = self.state
        decoded = decode(self.program)
        handlers = decoded.bind_fast(state, self.memory)
        name = self.program.name
        n = len(handlers)
        pc = state.pc
        executed = 0
        halted = False
        try:
            try:
                for _ in range(max_instructions):
                    if not 0 <= pc < n:
                        raise SimulationError(f"pc {pc} out of range (program {name})")
                    nxt = handlers[pc]()
                    executed += 1
                    if nxt < 0:  # HALT sentinel
                        halted = True
                        break
                    pc = nxt
            finally:
                # Keep state.pc exactly where the reference engine leaves it,
                # including on SimulationError / unaligned-access faults.
                state.pc = pc
            self._check_budget(halted, executed, max_instructions, pc)
        finally:
            self.last_result = RunResult(
                state=state, memory=self.memory, instructions=executed, halted=halted, trace=None
            )
            metrics = _metrics()
            metrics.inc("sim.runs")
            metrics.inc("sim.runs_fast")
            metrics.inc("sim.instructions", executed)

    def _run_traced(self, max_instructions: int) -> List[TraceRecord]:
        """Eager record collection without generator suspension overhead.

        Identical commit semantics to :meth:`_iter_run_decoded`, but appends
        straight into a list — ``run(collect_trace=True)`` with no observers
        lands here.
        """
        state = self.state
        decoded = decode(self.program)
        handlers = decoded.bind_trace(state, self.memory)
        halt_flags = decoded.halt_flags
        name = self.program.name
        n = len(handlers)
        pc = state.pc
        records: List[TraceRecord] = []
        append = records.append
        executed = 0
        halted = False
        try:
            for seq in range(max_instructions):
                if not 0 <= pc < n:
                    raise SimulationError(f"pc {pc} out of range (program {name})")
                record = handlers[pc](seq)
                executed += 1
                append(record)
                if halt_flags[pc]:
                    halted = True
                    break
                pc = record.next_pc
            self._check_budget(halted, executed, max_instructions, pc)
        finally:
            self.last_result = RunResult(
                state=state, memory=self.memory, instructions=executed, halted=halted, trace=None
            )
            metrics = _metrics()
            metrics.inc("sim.runs")
            metrics.inc("sim.runs_traced")
            metrics.inc("sim.instructions", executed)
        return records

    # ------------------------------------------------------------------
    # Batched engine, single-lane view
    # ------------------------------------------------------------------
    def _run_batched_single(self, max_instructions: int) -> None:
        """Run this simulator's state/memory as lane 0 of a 1-lane batch.

        The vectorized tier retires the lane with its own fault fidelity
        (error captured per lane); re-raising here plus the shared
        :meth:`_check_budget` makes the single-lane view byte-identical to
        the decoded fast path, messages included.
        """
        from .batched import run_batch

        lane = run_batch(
            self.program,
            [self.memory],
            max_instructions=max_instructions,
            states=[self.state],
        )[0]
        self.last_result = RunResult(
            state=self.state,
            memory=self.memory,
            instructions=lane.instructions,
            halted=lane.halted,
            trace=None,
        )
        if lane.error is not None:
            raise lane.error
        self._check_budget(lane.halted, lane.instructions, max_instructions, self.state.pc)

    # ------------------------------------------------------------------
    # Public run surface
    # ------------------------------------------------------------------
    def iter_run(self, max_instructions: int = 1_000_000) -> Iterator[TraceRecord]:
        """Stream the run: yield each committed :class:`TraceRecord` in turn.

        Nothing is materialized — consumers that need only one pass (the
        profilers, :func:`repro.uarch.stream.prepare_stream`) process records
        as they commit, keeping resident memory flat.  Observers fire before
        the record is yielded.  After the generator is exhausted (or closed),
        :attr:`last_result` holds the trace-less :class:`RunResult`; the final
        architectural state and memory remain live on ``self.state`` /
        ``self.memory``.

        Dispatches the decoded handler table unless the simulator was built
        with ``engine="reference"``.
        """
        if self.engine == "reference":
            return self.iter_run_reference(max_instructions=max_instructions)
        return self._iter_run_decoded(max_instructions)

    def run(self, max_instructions: int = 1_000_000, collect_trace: bool = False) -> RunResult:
        """Run until ``halt`` or ``max_instructions`` committed instructions.

        ``collect_trace=True`` materializes the full record list on the
        result.  With no trace requested and no observers attached, the
        decoded engine skips record construction entirely (the no-allocation
        fast path).
        """
        if not self._observers and self.engine != "reference":
            if collect_trace:
                trace = self._run_traced(max_instructions)
            elif self.engine == "jit":
                from .jit import run_jit_fast

                run_jit_fast(self, max_instructions)
                trace = None
            elif self.engine == "batched":
                self._run_batched_single(max_instructions)
                trace = None
            else:
                self._run_fast(max_instructions)
                trace = None
            result = self.last_result
            return RunResult(
                state=result.state,
                memory=result.memory,
                instructions=result.instructions,
                halted=result.halted,
                trace=trace,
            )
        return self._drain(self.iter_run(max_instructions=max_instructions), collect_trace)

    def _drain(self, records: Iterator[TraceRecord], collect_trace: bool) -> RunResult:
        trace: Optional[List[TraceRecord]] = [] if collect_trace else None
        if trace is None:
            for _ in records:
                pass
        else:
            trace.extend(records)
        result = self.last_result
        return RunResult(
            state=result.state,
            memory=result.memory,
            instructions=result.instructions,
            halted=result.halted,
            trace=trace,
        )


def run_program(
    program: Program,
    memory: Optional[Memory] = None,
    max_instructions: int = 1_000_000,
    collect_trace: bool = False,
    observers: Optional[List[Observer]] = None,
    state: Optional[ArchState] = None,
    strict_budget: bool = False,
) -> RunResult:
    """Convenience wrapper: build a simulator, attach observers, run.

    A caller-supplied ``state`` is used as the live architectural state
    (its ``pc`` is reset to the program entry), exactly as when passing it
    to :class:`FunctionalSimulator` directly.
    """
    sim = FunctionalSimulator(program, memory=memory, state=state, strict_budget=strict_budget)
    for observer in observers or []:
        sim.add_observer(observer)
    return sim.run(max_instructions=max_instructions, collect_trace=collect_trace)


def stream_program(
    program: Program,
    memory: Optional[Memory] = None,
    max_instructions: int = 1_000_000,
    observers: Optional[List[Observer]] = None,
    state: Optional[ArchState] = None,
) -> Tuple[FunctionalSimulator, Iterator[TraceRecord]]:
    """Streaming counterpart of :func:`run_program`.

    Returns ``(simulator, record_iterator)``; after the iterator is drained
    the simulator's ``last_result`` / ``state`` / ``memory`` hold the outcome.
    """
    sim = FunctionalSimulator(program, memory=memory, state=state)
    for observer in observers or []:
        sim.add_observer(observer)
    return sim, sim.iter_run(max_instructions=max_instructions)
