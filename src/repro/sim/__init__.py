"""Functional simulation substrate: memory, architectural state, interpreter, traces."""

from .batched import LaneResult, run_batch
from .decoded import DecodedProgram, decode
from .functional import (
    DEFAULT_ENGINE,
    FunctionalSimulator,
    RunResult,
    SimulationError,
    run_program,
    stream_program,
)
from .jit import JitProgram, jit_decode
from .machine import ArchState
from .memory import WORD_BYTES, Memory
from .trace import TraceRecord

__all__ = [
    "DEFAULT_ENGINE",
    "DecodedProgram",
    "decode",
    "LaneResult",
    "run_batch",
    "JitProgram",
    "jit_decode",
    "FunctionalSimulator",
    "RunResult",
    "SimulationError",
    "run_program",
    "stream_program",
    "ArchState",
    "WORD_BYTES",
    "Memory",
    "TraceRecord",
]
