"""Dynamic trace records emitted by the functional simulator.

One :class:`TraceRecord` per *committed* instruction.  The fields cover
everything the profilers and the Figure 1 analysis need:

* ``old_dest`` — the value in the destination register *before* the write.
  Register-value prediction predicts ``result == old_dest``; this field is the
  heart of the whole reproduction.
* ``src_values`` — operand values actually read.
* ``addr`` — effective address for loads/stores.
* ``taken`` / ``next_pc`` — control-flow outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..isa.instructions import Instruction
from ..isa.registers import Reg


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One committed dynamic instruction.

    ``slots=True``: suite runs keep tens of thousands of these resident per
    cached trace, and the slotted layout roughly halves their footprint.
    """

    seq: int  # dynamic instruction number, 0-based
    pc: int
    inst: Instruction
    next_pc: int
    result: Optional[int] = None  # value written to dst (None if no dest)
    old_dest: Optional[int] = None  # prior value of dst (None if no dest)
    src_values: Tuple[int, ...] = ()
    addr: Optional[int] = None  # effective address for memory ops
    store_value: Optional[int] = None
    taken: Optional[bool] = None  # conditional branches only

    @property
    def op_name(self) -> str:
        return self.inst.op.name

    @property
    def dst(self) -> Optional[Reg]:
        return self.inst.writes

    @property
    def is_load(self) -> bool:
        return self.inst.is_load

    @property
    def register_value_reused(self) -> bool:
        """True when the instruction produced the value already in its
        destination register — i.e. a correct same-register RVP prediction."""
        return self.result is not None and self.result == self.old_dest
