"""Sparse 64-bit word memory.

Addresses are byte addresses; every access moves one aligned 64-bit word
(8 bytes), which is the only access size in the ISA.  Backing storage is a
dict keyed by word index, so programs can scatter data structures anywhere in
a 64-bit address space without preallocating.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from ..isa.opcodes import MASK64

WORD_BYTES = 8


class Memory:
    """Sparse word-addressable memory; unwritten words read as zero."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    @staticmethod
    def _word_index(addr: int) -> int:
        addr &= MASK64
        if addr % WORD_BYTES:
            raise ValueError(f"unaligned access at address {addr:#x}")
        return addr // WORD_BYTES

    def load(self, addr: int) -> int:
        return self._words.get(self._word_index(addr), 0)

    def store(self, addr: int, value: int) -> None:
        self._words[self._word_index(addr)] = value & MASK64

    # ------------------------------------------------------------------
    # Aligned word-index fast path
    # ------------------------------------------------------------------
    # The decoded interpreter (repro.sim.decoded) masks the effective address
    # and checks alignment itself, so its handlers address memory directly by
    # word index and skip the per-access mask/modulo of the checked API above.
    # Callers of these two methods own both invariants: ``index`` is
    # ``masked_addr >> 3`` for an 8-byte-aligned address, and stored values
    # are already confined to 64 bits.

    def load_word_index(self, index: int) -> int:
        return self._words.get(index, 0)

    def store_word_index(self, index: int, value: int) -> None:
        self._words[index] = value

    def write_words(self, addr: int, values: Iterable[int]) -> None:
        """Bulk-initialise consecutive words starting at ``addr``."""
        index = self._word_index(addr)
        for offset, value in enumerate(values):
            self._words[index + offset] = value & MASK64

    def read_words(self, addr: int, count: int) -> Tuple[int, ...]:
        index = self._word_index(addr)
        return tuple(self._words.get(index + i, 0) for i in range(count))

    def copy(self) -> "Memory":
        clone = Memory()
        clone._words = dict(self._words)
        return clone

    def nonzero_words(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(byte_address, value)`` for words ever written."""
        for index, value in self._words.items():
            yield index * WORD_BYTES, value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        # Compare modulo zero-valued words (unwritten == written-zero).
        mine = {k: v for k, v in self._words.items() if v}
        theirs = {k: v for k, v in other._words.items() if v}
        return mine == theirs

    def __len__(self) -> int:
        return len(self._words)
