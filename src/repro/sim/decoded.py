"""Pre-decoded threaded-code execution core.

The reference interpreter (:meth:`~repro.sim.functional.FunctionalSimulator.step`)
re-decodes every static instruction on every dynamic execution: an
``OpKind`` if-chain, per-operand :meth:`~repro.sim.machine.ArchState.read`
calls, alignment math inside :class:`~repro.sim.memory.Memory`, and a frozen
dataclass allocation per commit.  Dynamic instruction streams are dominated
by a small static working set inside loops, so all of that work amortizes to
near zero if it is done once per *static* instruction instead.

:func:`decode` is that pass.  For each static :class:`Instruction` it
extracts, exactly once:

* the register-bank (int/fp) and slot index of every operand — the hardwired
  zero registers read as plain slots, since nothing ever writes their cells;
* the pre-masked immediate / effective-address offset;
* the resolved ``alu_fn``, or a flat branch condition on the unsigned 64-bit
  value (no ``to_signed`` round trip);
* the destination slot (or the knowledge that the result is architecturally
  dropped);
* the fall-through and branch-target pcs as constants.

The result of each extraction is a pair of *handler builders*.  At run time
:func:`bind_fast` / :func:`bind_trace` instantiate one closure per static
instruction with the live register-bank lists and memory bound into the
closure cells (threaded code), giving two execution modes:

``fast``
    ``handler() -> next_pc`` (or :data:`HALT`).  Mutates architectural state
    only; no :class:`TraceRecord` is ever allocated.  Used by trace-less
    consumers via ``FunctionalSimulator.run(collect_trace=False)`` with no
    observers attached.

``trace``
    ``handler(seq) -> TraceRecord``.  Produces records bit-identical to the
    reference interpreter's (including unmasked ``li`` results and the
    ``old_dest`` capture) and keeps ``state.pc`` live for observers.

Handlers are rebuilt per run (one closure per *static* instruction — noise
next to tens of thousands of dynamic executions), while the decode pass
itself is memoized on the :class:`Program` instance, so suite sweeps that
re-run a cached program pay for decoding once.

Correctness is pinned by golden equivalence against ``step()`` — see
``tests/test_sim_decoded.py`` and the ``trace-equivalence`` fuzz oracle.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..isa.instructions import Instruction
from ..isa.opcodes import MASK64, OpKind, SIGN_BIT
from ..isa.program import Program
from .machine import ArchState
from .memory import Memory
from .trace import TraceRecord

#: Sentinel next-pc returned by fast handlers when the instruction halts.
HALT = -1

#: ``handler() -> next_pc`` (or :data:`HALT`); mutates state/memory only.
FastHandler = Callable[[], int]
#: ``handler(seq) -> TraceRecord``; also advances ``state.pc``.
TraceHandler = Callable[[int], TraceRecord]

#: Flat branch conditions on the *unsigned* 64-bit test value.  Equivalent to
#: ``cond_fn(to_signed(v))`` for every ``v`` in ``[0, 2**64)`` — the sign bit
#: is just an unsigned comparison against ``SIGN_BIT``.
_FLAT_CONDS = {
    "beq": lambda v: v == 0,
    "bne": lambda v: v != 0,
    "blt": lambda v: v >= SIGN_BIT,
    "ble": lambda v: v == 0 or v >= SIGN_BIT,
    "bgt": lambda v: 0 < v < SIGN_BIT,
    "bge": lambda v: v < SIGN_BIT,
    "fbeq": lambda v: v == 0,
    "fbne": lambda v: v != 0,
}


def _bank(state: ArchState, reg) -> List[int]:
    return state.fp_regs if reg.is_fp else state.int_regs


def _decode_one(inst: Instruction) -> Tuple[Callable, Callable]:
    """Compile one static instruction into ``(build_fast, build_trace)``.

    Each builder takes ``(state, memory)`` and returns the specialized
    handler closure for this pc.
    """
    op = inst.op
    kind = op.kind
    pc = inst.pc
    fall = pc + 1
    inst_ref = inst  # closure cell shared by every dynamic execution
    TR = TraceRecord
    dst = inst.writes  # None: no architectural write (incl. zero-reg dest)

    # ------------------------------------------------------------------
    if kind is OpKind.ALU:
        fn = op.alu_fn
        s1, s2 = inst.src1, inst.src2
        if s1 is not None and s2 is not None:
            i1, i2 = s1.index, s2.index
            if dst is not None:
                di = dst.index

                def build_fast(state, memory, _s1=s1, _s2=s2, _dst=dst):
                    b1, b2, bd = _bank(state, _s1), _bank(state, _s2), _bank(state, _dst)

                    def run():
                        bd[di] = fn(b1[i1], b2[i2]) & MASK64
                        return fall

                    return run

                def build_trace(state, memory, _s1=s1, _s2=s2, _dst=dst):
                    b1, b2, bd = _bank(state, _s1), _bank(state, _s2), _bank(state, _dst)

                    def run(seq):
                        a = b1[i1]
                        b = b2[i2]
                        result = fn(a, b)
                        old = bd[di]
                        bd[di] = result & MASK64
                        state.pc = fall
                        return TR(seq, pc, inst_ref, fall, result, old, (a, b), None, None, None)

                    return run

            else:  # result computed, architecturally dropped (zero-reg dest)

                def build_fast(state, memory, _s1=s1, _s2=s2):
                    b1, b2 = _bank(state, _s1), _bank(state, _s2)

                    def run():
                        fn(b1[i1], b2[i2])
                        return fall

                    return run

                def build_trace(state, memory, _s1=s1, _s2=s2):
                    b1, b2 = _bank(state, _s1), _bank(state, _s2)

                    def run(seq):
                        a = b1[i1]
                        b = b2[i2]
                        result = fn(a, b)
                        state.pc = fall
                        return TR(seq, pc, inst_ref, fall, result, 0, (a, b), None, None, None)

                    return run

        elif s1 is not None:  # register + immediate (or 1-operand mov)
            i1 = s1.index
            imm = inst.imm if inst.imm is not None else 0
            if dst is not None:
                di = dst.index

                def build_fast(state, memory, _s1=s1, _dst=dst):
                    b1, bd = _bank(state, _s1), _bank(state, _dst)

                    def run():
                        bd[di] = fn(b1[i1], imm) & MASK64
                        return fall

                    return run

                def build_trace(state, memory, _s1=s1, _dst=dst):
                    b1, bd = _bank(state, _s1), _bank(state, _dst)

                    def run(seq):
                        a = b1[i1]
                        result = fn(a, imm)
                        old = bd[di]
                        bd[di] = result & MASK64
                        state.pc = fall
                        return TR(seq, pc, inst_ref, fall, result, old, (a,), None, None, None)

                    return run

            else:

                def build_fast(state, memory, _s1=s1):
                    b1 = _bank(state, _s1)

                    def run():
                        fn(b1[i1], imm)
                        return fall

                    return run

                def build_trace(state, memory, _s1=s1):
                    b1 = _bank(state, _s1)

                    def run(seq):
                        a = b1[i1]
                        result = fn(a, imm)
                        state.pc = fall
                        return TR(seq, pc, inst_ref, fall, result, 0, (a,), None, None, None)

                    return run

        else:  # immediate only (li/fli): the result is a decode-time constant
            imm = inst.imm if inst.imm is not None else 0
            const_result = fn(0, imm)  # unmasked, exactly like the reference
            const_masked = const_result & MASK64
            if dst is not None:
                di = dst.index

                def build_fast(state, memory, _dst=dst):
                    bd = _bank(state, _dst)

                    def run():
                        bd[di] = const_masked
                        return fall

                    return run

                def build_trace(state, memory, _dst=dst):
                    bd = _bank(state, _dst)

                    def run(seq):
                        old = bd[di]
                        bd[di] = const_masked
                        state.pc = fall
                        return TR(seq, pc, inst_ref, fall, const_result, old, (), None, None, None)

                    return run

            else:

                def build_fast(state, memory):
                    def run():
                        return fall

                    return run

                def build_trace(state, memory):
                    def run(seq):
                        state.pc = fall
                        return TR(seq, pc, inst_ref, fall, const_result, 0, (), None, None, None)

                    return run

    # ------------------------------------------------------------------
    elif kind is OpKind.LOAD:
        s1 = inst.src1
        i1 = s1.index
        off = inst.imm or 0
        if dst is not None:
            di = dst.index

            def build_fast(state, memory, _s1=s1, _dst=dst):
                b1, bd = _bank(state, _s1), _bank(state, _dst)
                load_wi = memory.load_word_index

                def run():
                    addr = (b1[i1] + off) & MASK64
                    if addr & 7:
                        raise ValueError(f"unaligned access at address {addr:#x}")
                    bd[di] = load_wi(addr >> 3)
                    return fall

                return run

            def build_trace(state, memory, _s1=s1, _dst=dst):
                b1, bd = _bank(state, _s1), _bank(state, _dst)
                load_wi = memory.load_word_index

                def run(seq):
                    base = b1[i1]
                    addr = (base + off) & MASK64
                    if addr & 7:
                        raise ValueError(f"unaligned access at address {addr:#x}")
                    result = load_wi(addr >> 3)
                    old = bd[di]
                    bd[di] = result
                    state.pc = fall
                    return TR(seq, pc, inst_ref, fall, result, old, (base,), addr, None, None)

                return run

        else:  # load into a zero register: access happens, value dropped

            def build_fast(state, memory, _s1=s1):
                b1 = _bank(state, _s1)
                load_wi = memory.load_word_index

                def run():
                    addr = (b1[i1] + off) & MASK64
                    if addr & 7:
                        raise ValueError(f"unaligned access at address {addr:#x}")
                    load_wi(addr >> 3)
                    return fall

                return run

            def build_trace(state, memory, _s1=s1):
                b1 = _bank(state, _s1)
                load_wi = memory.load_word_index

                def run(seq):
                    base = b1[i1]
                    addr = (base + off) & MASK64
                    if addr & 7:
                        raise ValueError(f"unaligned access at address {addr:#x}")
                    result = load_wi(addr >> 3)
                    state.pc = fall
                    return TR(seq, pc, inst_ref, fall, result, 0, (base,), addr, None, None)

                return run

    # ------------------------------------------------------------------
    elif kind is OpKind.STORE:
        s1, s2 = inst.src1, inst.src2
        i1, i2 = s1.index, s2.index
        off = inst.imm or 0

        def build_fast(state, memory, _s1=s1, _s2=s2):
            b1, b2 = _bank(state, _s1), _bank(state, _s2)
            store_wi = memory.store_word_index

            def run():
                addr = (b1[i1] + off) & MASK64
                if addr & 7:
                    raise ValueError(f"unaligned access at address {addr:#x}")
                store_wi(addr >> 3, b2[i2])
                return fall

            return run

        def build_trace(state, memory, _s1=s1, _s2=s2):
            b1, b2 = _bank(state, _s1), _bank(state, _s2)
            store_wi = memory.store_word_index

            def run(seq):
                base = b1[i1]
                value = b2[i2]
                addr = (base + off) & MASK64
                if addr & 7:
                    raise ValueError(f"unaligned access at address {addr:#x}")
                store_wi(addr >> 3, value)
                state.pc = fall
                return TR(seq, pc, inst_ref, fall, None, None, (base, value), addr, value, None)

            return run

    # ------------------------------------------------------------------
    elif kind is OpKind.BRANCH:
        s1 = inst.src1
        i1 = s1.index
        target = inst.target_pc
        flat = _FLAT_CONDS.get(op.name)
        if flat is None:  # pragma: no cover - every shipped branch is mapped
            cond_fn = op.cond_fn
            flat = lambda v, _fn=cond_fn: _fn(v)  # noqa: E731

        def build_fast(state, memory, _s1=s1, _test=flat):
            b1 = _bank(state, _s1)

            def run():
                return target if _test(b1[i1]) else fall

            return run

        def build_trace(state, memory, _s1=s1, _test=flat):
            b1 = _bank(state, _s1)

            def run(seq):
                v = b1[i1]
                if _test(v):
                    state.pc = target
                    return TR(seq, pc, inst_ref, target, None, None, (v,), None, None, True)
                state.pc = fall
                return TR(seq, pc, inst_ref, fall, None, None, (v,), None, None, False)

            return run

    # ------------------------------------------------------------------
    elif kind is OpKind.JUMP:
        target = inst.target_pc

        def build_fast(state, memory):
            def run():
                return target

            return run

        def build_trace(state, memory):
            def run(seq):
                state.pc = target
                return TR(seq, pc, inst_ref, target, None, None, (), None, None, None)

            return run

    # ------------------------------------------------------------------
    elif kind is OpKind.CALL:
        target = inst.target_pc
        return_pc = pc + 1  # the result value, a decode-time constant
        if dst is not None:
            di = dst.index

            def build_fast(state, memory, _dst=dst):
                bd = _bank(state, _dst)

                def run():
                    bd[di] = return_pc
                    return target

                return run

            def build_trace(state, memory, _dst=dst):
                bd = _bank(state, _dst)

                def run(seq):
                    old = bd[di]
                    bd[di] = return_pc
                    state.pc = target
                    return TR(seq, pc, inst_ref, target, return_pc, old, (), None, None, None)

                return run

        else:

            def build_fast(state, memory):
                def run():
                    return target

                return run

            def build_trace(state, memory):
                def run(seq):
                    state.pc = target
                    return TR(seq, pc, inst_ref, target, return_pc, 0, (), None, None, None)

                return run

    # ------------------------------------------------------------------
    elif kind is OpKind.INDIRECT:
        s1 = inst.src1
        i1 = s1.index

        def build_fast(state, memory, _s1=s1):
            b1 = _bank(state, _s1)

            def run():
                return b1[i1]

            return run

        def build_trace(state, memory, _s1=s1):
            b1 = _bank(state, _s1)

            def run(seq):
                t = b1[i1]
                state.pc = t
                return TR(seq, pc, inst_ref, t, None, None, (t,), None, None, None)

            return run

    # ------------------------------------------------------------------
    elif kind is OpKind.HALT:

        def build_fast(state, memory):
            def run():
                return HALT

            return run

        def build_trace(state, memory):
            def run(seq):
                state.pc = pc
                return TR(seq, pc, inst_ref, pc, None, None, (), None, None, None)

            return run

    # ------------------------------------------------------------------
    else:  # NOP: no effects

        def build_fast(state, memory):
            def run():
                return fall

            return run

        def build_trace(state, memory):
            def run(seq):
                state.pc = fall
                return TR(seq, pc, inst_ref, fall, None, None, (), None, None, None)

            return run

    return build_fast, build_trace


class DecodedProgram:
    """The once-per-static-instruction decode of one :class:`Program`.

    Holds one ``(build_fast, build_trace)`` builder pair per pc plus the
    pre-computed halt map.  Obtain via :func:`decode`, which memoizes the
    instance on the program (programs are immutable).
    """

    __slots__ = ("program", "specs", "halt_flags")

    def __init__(self, program: Program) -> None:
        self.program = program
        self.specs: Tuple[Tuple[Callable, Callable], ...] = tuple(
            _decode_one(inst) for inst in program
        )
        self.halt_flags: Tuple[bool, ...] = tuple(
            inst.op.kind is OpKind.HALT for inst in program
        )

    def bind_fast(self, state: ArchState, memory: Memory) -> List[FastHandler]:
        """Instantiate the no-record handler table against live state."""
        return [build_fast(state, memory) for build_fast, _ in self.specs]

    def bind_trace(self, state: ArchState, memory: Memory) -> List[TraceHandler]:
        """Instantiate the record-producing handler table against live state."""
        return [build_trace(state, memory) for _, build_trace in self.specs]


def decode(program: Program) -> DecodedProgram:
    """Decode ``program`` once; repeated calls return the cached instance.

    The cache lives on the program object itself (programs are immutable and
    identity-cached by :class:`~repro.core.session.SimSession`), so a suite
    sweep that replays one program across many inputs and machine
    configurations decodes it exactly once.
    """
    cached: Optional[DecodedProgram] = getattr(program, "_decoded_cache", None)
    if cached is None:
        cached = DecodedProgram(program)
        program._decoded_cache = cached  # type: ignore[attr-defined]
    return cached
