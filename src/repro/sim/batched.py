"""Batched SIMT-style execution tier: N datasets through one decoded Program.

One :class:`Program` is decoded once into *vector builders* — one per static
instruction — that operate on NumPy register files of shape ``(32, L)``
(uint64, C-order: each architectural register is one contiguous row across
all ``L`` live lanes).  A batch run interleaves two regimes:

* **lockstep** — every live lane sits at the same pc, so one handler call
  commits one instruction for *all* lanes (``np.add(row, row, out=row)``
  style).  This is where the throughput comes from: the per-step Python
  dispatch overhead is paid once per batch instead of once per lane.
* **masked** — lanes have diverged (a data-dependent branch or an indirect
  jump with disagreeing targets).  Execution falls back to scalar per-lane
  stepping of the minimum-pc lane group (min-pc scheduling reconverges
  loops at their headers), using exactly the reference operand semantics.
  As soon as every live lane agrees on a pc again, lockstep resumes.

Memory is vectorized through a *dense window*: a ``(lanes, cap)`` uint64
image covering word indices ``[0, cap)`` (``cap`` a power of two sized from
the initial footprint, grown on demand up to :data:`DENSE_MAX_WORDS`), so a
lockstep load/store is one fancy gather/scatter instead of L dict probes.
Entries outside the window stay in each lane's sparse :class:`Memory` dict;
retiring a lane writes its window back into its ``Memory`` so callers see
ordinary memory objects.  Power-of-two window bounds make the single
or-reduce over the address vector an *exact* "any lane misaligned / any
lane outside" test (the OR of uint64s is >= each operand, and crosses a
power of two iff some operand does), so the fast path needs exactly one
reduction per memory step.

Per-lane semantics are identical to the scalar engines by construction:

* every vectorized operation either wraps identically mod 2**64 (add, sub,
  mul, bitwise, shifts via pre-masked counts, signed compares via int64
  views) or is delegated to the scalar ``alu_fn`` per lane (div/rem and any
  immediate form whose Python semantics don't map onto a uint64 kernel);
* faults are *per lane*: an unaligned access or out-of-range pc retires the
  offending lane with the exact scalar-engine exception recorded on its
  :class:`LaneResult` (same message, same ``state.pc``, same commit count)
  while the remaining lanes keep running — a potentially-faulting vector
  access commits nothing and is replayed on the masked path;
* budgets are per lane: a lane that exhausts its budget retires unhalted at
  its current pc (or raises :class:`BudgetExceeded` under ``strict_budget``
  naming the lane), without disturbing sibling lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Union

import numpy as np

from ..isa.instructions import Instruction
from ..isa.opcodes import MASK64, SIGN_BIT, OpKind, _ALU_FNS
from ..isa.program import Program
from ..isa.registers import NUM_FP_REGS, NUM_INT_REGS
from .decoded import _FLAT_CONDS
from .functional import BudgetExceeded, RunResult, SimulationError
from .machine import ArchState
from .memory import Memory

__all__ = ["LaneResult", "BatchedProgram", "batched_decode", "run_batch"]

#: Sentinel return codes from lockstep handlers (real pcs are >= 0).
HALT_CODE = -1  #: the batch executed a halt (all lanes retire halted)
DIVERGE = -2  #: a branch/indirect split the lanes; per-lane pcs were published
REFAULT = -3  #: a memory op may fault on some lane; nothing committed, replay masked

#: Dense-window size in 8-byte words (a power of two).  The window is
#: allocated at full size per batch — 32 MiB of *virtual* address space per
#: lane; calloc'd pages materialize only where the program actually touches.
DENSE_WORDS = 1 << 22

_U64 = np.uint64
_I64 = np.int64
_U0 = np.uint64(0)
_U3 = np.uint64(3)
_U63 = np.uint64(63)
_SB = np.uint64(SIGN_BIT)

# Reverse map from an opcode's alu_fn to its canonical semantic name, so fp
# aliases (fadd -> add, itof -> mov, ...) vectorize through one table.
_FN_NAME = {fn: name for name, fn in _ALU_FNS.items()}

# Immediate-form ops whose Python-int semantics are *exactly* reproduced by
# uint64 kernels with a pre-masked immediate (wrap mod 2**64, or bitwise ops
# where only the low 64 bits of the immediate can matter).  Everything else
# (div/rem, sra, signed compares, ...) takes the scalar per-lane path with
# the raw immediate, byte-matching ``fn(a, imm)`` in the reference engine.
_IMM_VECTOR_SAFE = frozenset(
    {"add", "sub", "mul", "and", "or", "xor", "sll", "srl", "mov", "li"}
)

#: Mutation seam for the fuzz-oracle self-test: when True, a divergent branch
#: applies the majority outcome to *every* lane (a seeded lane-mask defect
#: that the batched oracle leg must catch).
_TEST_BREAK_LANE_MASK = False

#: Branches whose taken-count is a bare ``count_nonzero`` on the test row
#: (no bool temporary needed until lanes actually diverge).
_NONZERO_TAKEN = frozenset({"bne", "fbne"})
_ZERO_TAKEN = frozenset({"beq", "fbeq"})

#: Vectorized branch tests on the unsigned uint64 test row -> bool vector.
_VEC_CONDS = {
    "beq": lambda v: v == _U0,
    "bne": lambda v: v != _U0,
    "blt": lambda v: v >= _SB,
    "ble": lambda v: (v == _U0) | (v >= _SB),
    "bgt": lambda v: (v != _U0) & (v < _SB),
    "bge": lambda v: v < _SB,
    "fbeq": lambda v: v == _U0,
    "fbne": lambda v: v != _U0,
}


@dataclass
class LaneResult(RunResult):
    """Per-lane outcome of :func:`run_batch`.

    ``error`` carries the exact exception the scalar engines would have
    raised for this lane's input (lane faults retire the lane instead of
    aborting the batch).  ``lane`` is the caller's original lane index.
    """

    error: Optional[BaseException] = None
    lane: int = -1


class _MemCtx:
    """Live memory context shared by every bound lockstep handler.

    ``dense`` is the ``(total_lanes, DENSE_WORDS)`` window (or None for
    pure-dict mode), ``rows`` the dense row index per live lane column, and
    ``mget``/``mput`` the per-live-lane scalar accessors used by the masked
    path (window-aware when dense is active).  ``init_words`` bounds the
    initial footprint and ``dirty`` exactly tracks store targets beyond it,
    so retiring a lane never scans the full virtual window.
    """

    __slots__ = ("dense", "rows", "mget", "mput", "init_words", "dirty")

    def __init__(self) -> None:
        self.dense: Optional[np.ndarray] = None
        self.rows: Optional[np.ndarray] = None
        self.mget: list = []
        self.mput: list = []
        self.init_words: int = 0
        self.dirty: Set[int] = set()


def _row(ints, fps, reg):
    return fps[reg.index] if reg.is_fp else ints[reg.index]


# ---------------------------------------------------------------------------
# Vector (lockstep) builders
# ---------------------------------------------------------------------------


def _build_alu_vector(inst: Instruction):
    """Lockstep builder for an ALU op, or None to force the scalar path."""
    op = inst.op
    sem = _FN_NAME.get(op.alu_fn)
    if sem is None:  # pragma: no cover - every shipped opcode maps
        return None
    s1, s2, dst = inst.src1, inst.src2, inst.writes
    fall = inst.pc + 1

    if s1 is None:  # li / fli: decode-time constant broadcast
        imm = inst.imm if inst.imm is not None else 0
        const = np.uint64(op.alu_fn(0, imm) & MASK64)
        if dst is None:

            def build(ints, fps, mem, div, L):
                def run():
                    return fall

                return run

            return build

        def build(ints, fps, mem, div, L, _dst=dst):
            d = _row(ints, fps, _dst)

            def run():
                d.fill(const)
                return fall

            return run

        return build

    if dst is None:
        # Result architecturally dropped and uint64 kernels cannot fault:
        # a pure fall-through (div-by-zero is defined as 0 in this ISA).
        def build(ints, fps, mem, div, L):
            def run():
                return fall

            return run

        return build

    if s2 is not None:  # register-register
        if sem in ("div", "rem"):
            fn = op.alu_fn

            def build(ints, fps, mem, div, L, _s1=s1, _s2=s2, _dst=dst):
                a = _row(ints, fps, _s1)
                b = _row(ints, fps, _s2)
                d = _row(ints, fps, _dst)

                def run():
                    d[:] = [fn(x, y) & MASK64 for x, y in zip(a.tolist(), b.tolist())]
                    return fall

                return run

            return build

        kernel = _RR_KERNELS.get(sem)
        if kernel is None:  # pragma: no cover - table covers the ISA
            return None

        def build(ints, fps, mem, div, L, _s1=s1, _s2=s2, _dst=dst):
            a = _row(ints, fps, _s1)
            b = _row(ints, fps, _s2)
            d = _row(ints, fps, _dst)

            def run():
                kernel(a, b, d)
                return fall

            return run

        return build

    # register + immediate (or 1-operand mov)
    imm = inst.imm if inst.imm is not None else 0
    if sem not in _IMM_VECTOR_SAFE:
        fn = op.alu_fn

        def build(ints, fps, mem, div, L, _s1=s1, _dst=dst):
            a = _row(ints, fps, _s1)
            d = _row(ints, fps, _dst)

            def run():
                d[:] = [fn(x, imm) & MASK64 for x in a.tolist()]
                return fall

            return run

        return build

    kernel = _RI_KERNELS[sem](imm)

    def build(ints, fps, mem, div, L, _s1=s1, _dst=dst):
        a = _row(ints, fps, _s1)
        d = _row(ints, fps, _dst)

        def run():
            kernel(a, d)
            return fall

        return run

    return build


def _cmp_signed(cmp):
    def kernel(a, b, d):
        d[:] = cmp(a.view(_I64), b.view(_I64))

    return kernel


def _sra_rr(a, b, d):
    np.right_shift(a.view(_I64), (b & _U63).view(_I64), out=d.view(_I64))


_RR_KERNELS = {
    "add": lambda a, b, d: np.add(a, b, out=d),
    "sub": lambda a, b, d: np.subtract(a, b, out=d),
    "mul": lambda a, b, d: np.multiply(a, b, out=d),
    "and": lambda a, b, d: np.bitwise_and(a, b, out=d),
    "or": lambda a, b, d: np.bitwise_or(a, b, out=d),
    "xor": lambda a, b, d: np.bitwise_xor(a, b, out=d),
    "sll": lambda a, b, d: np.left_shift(a, b & _U63, out=d),
    "srl": lambda a, b, d: np.right_shift(a, b & _U63, out=d),
    "sra": _sra_rr,
    "mov": lambda a, b, d: np.copyto(d, a),
    "cmpeq": lambda a, b, d: d.__setitem__(slice(None), a == b),
    "cmpne": lambda a, b, d: d.__setitem__(slice(None), a != b),
    "cmpult": lambda a, b, d: d.__setitem__(slice(None), a < b),
    "cmplt": _cmp_signed(lambda a, b: a < b),
    "cmple": _cmp_signed(lambda a, b: a <= b),
}


def _ri_wrap(ufunc):
    def make(imm):
        k = np.uint64(imm & MASK64)

        def kernel(a, d):
            ufunc(a, k, out=d)

        return kernel

    return make


def _ri_shift(ufunc):
    def make(imm):
        k = np.uint64(imm & 63)

        def kernel(a, d):
            ufunc(a, k, out=d)

        return kernel

    return make


_RI_KERNELS = {
    "add": _ri_wrap(np.add),
    "sub": _ri_wrap(np.subtract),
    "mul": _ri_wrap(np.multiply),
    "and": _ri_wrap(np.bitwise_and),
    "or": _ri_wrap(np.bitwise_or),
    "xor": _ri_wrap(np.bitwise_xor),
    "sll": _ri_shift(np.left_shift),
    "srl": _ri_shift(np.right_shift),
    "mov": lambda imm: (lambda a, d: np.copyto(d, a)),
    "li": lambda imm: (lambda a, d: d.fill(np.uint64(imm & MASK64))),
}


def _build_vector(inst: Instruction):
    """Compile one static instruction into its lockstep vector builder.

    A builder takes the live batch context ``(ints, fps, mem, div, L)`` and
    returns ``run() -> next_pc | sentinel``.  Builders are re-bound whenever
    the lane set or the dense window changes, so handlers can capture the
    register rows and window arrays directly.
    """
    op = inst.op
    kind = op.kind
    fall = inst.pc + 1

    if kind is OpKind.ALU:
        build = _build_alu_vector(inst)
        if build is not None:
            return build

        # Unmapped ALU op: replay every step on the masked path.
        def build_fallback(ints, fps, mem, div, L):  # pragma: no cover
            def run():
                return REFAULT

            return run

        return build_fallback  # pragma: no cover

    if kind is OpKind.LOAD:
        s1, dst = inst.src1, inst.writes
        off = np.uint64((inst.imm or 0) & MASK64)

        def build(ints, fps, mem, div, L, _s1=s1, _dst=dst):
            base = _row(ints, fps, _s1)
            d = _row(ints, fps, _dst) if _dst is not None else None
            dense, rows = mem.dense, mem.rows
            if dense is None:
                mget = mem.mget

                def run():
                    addr = base + off
                    if int(np.bitwise_or.reduce(addr)) & 7:
                        return REFAULT
                    idx = (addr >> _U3).tolist()
                    if d is None:
                        for g, ix in zip(mget, idx):
                            g(ix)
                    else:
                        d[:] = [g(ix) for g, ix in zip(mget, idx)]
                    return fall

                return run

            def run():
                addr = base + off
                if int(np.bitwise_or.reduce(addr)) & _BAD_ADDR:
                    return REFAULT  # misaligned or beyond the window
                if d is not None:
                    d[:] = dense[rows, addr >> _U3]
                return fall

            return run

        return build

    if kind is OpKind.STORE:
        s1, s2 = inst.src1, inst.src2
        off = np.uint64((inst.imm or 0) & MASK64)

        def build(ints, fps, mem, div, L, _s1=s1, _s2=s2):
            base = _row(ints, fps, _s1)
            val = _row(ints, fps, _s2)
            dense, rows = mem.dense, mem.rows
            if dense is None:
                mput = mem.mput

                def run():
                    addr = base + off
                    if int(np.bitwise_or.reduce(addr)) & 7:
                        return REFAULT
                    idx = (addr >> _U3).tolist()
                    for p, ix, v in zip(mput, idx, val.tolist()):
                        p(ix, v)
                    return fall

                return run

            init_words8 = mem.init_words * 8
            dirty = mem.dirty

            def run():
                addr = base + off
                m = int(np.bitwise_or.reduce(addr))
                if m & _BAD_ADDR:
                    return REFAULT  # misaligned or beyond the window
                idx = addr >> _U3
                dense[rows, idx] = val
                if m >= init_words8:
                    # Rare: stores past the initial footprint are tracked
                    # exactly so lane retirement never scans the window tail.
                    dirty.update(idx.tolist())
                return fall

            return run

        return build

    if kind is OpKind.BRANCH:
        s1 = inst.src1
        target = inst.target_pc
        name = op.name
        if name in _NONZERO_TAKEN or name in _ZERO_TAKEN:
            taken_on_nonzero = name in _NONZERO_TAKEN

            def build(ints, fps, mem, div, L, _s1=s1):
                v = _row(ints, fps, _s1)
                t_all, t_none = (target, fall) if taken_on_nonzero else (fall, target)

                def run():
                    nz = int(np.count_nonzero(v))
                    if nz == L:
                        return t_all
                    if nz == 0:
                        return t_none
                    if _TEST_BREAK_LANE_MASK:
                        return t_all if nz * 2 >= L else t_none
                    taken = v != _U0 if taken_on_nonzero else v == _U0
                    div[0] = [target if b else fall for b in taken.tolist()]
                    return DIVERGE

                return run

            return build

        cond = _VEC_CONDS.get(name)
        if cond is None:  # pragma: no cover - every shipped branch is mapped
            flat = _FLAT_CONDS.get(name) or op.cond_fn

            def cond(v, _flat=flat):  # type: ignore[misc]
                return np.fromiter(
                    (_flat(int(x)) for x in v), dtype=bool, count=len(v)
                )

        def build(ints, fps, mem, div, L, _s1=s1):
            v = _row(ints, fps, _s1)

            def run():
                t = cond(v)
                nt = int(t.sum())
                if nt == L:
                    return target
                if nt == 0:
                    return fall
                if _TEST_BREAK_LANE_MASK:
                    return target if nt * 2 >= L else fall
                div[0] = [target if b else fall for b in t.tolist()]
                return DIVERGE

            return run

        return build

    if kind is OpKind.JUMP:
        target = inst.target_pc

        def build(ints, fps, mem, div, L):
            def run():
                return target

            return run

        return build

    if kind is OpKind.CALL:
        target = inst.target_pc
        return_pc = np.uint64(inst.pc + 1)
        dst = inst.writes

        def build(ints, fps, mem, div, L, _dst=dst):
            d = _row(ints, fps, _dst) if _dst is not None else None

            def run():
                if d is not None:
                    d.fill(return_pc)
                return target

            return run

        return build

    if kind is OpKind.INDIRECT:
        s1 = inst.src1

        def build(ints, fps, mem, div, L, _s1=s1):
            v = _row(ints, fps, _s1)

            def run():
                t0 = int(v[0])
                if L == 1 or bool((v == v[0]).all()):
                    return t0
                div[0] = [int(x) for x in v]
                return DIVERGE

            return run

        return build

    if kind is OpKind.HALT:

        def build(ints, fps, mem, div, L):
            def run():
                return HALT_CODE

            return run

        return build

    # NOP

    def build(ints, fps, mem, div, L):
        def run():
            return fall

        return run

    return build


#: One test catches both fault classes on the OR of a uint64 address vector:
#: a low bit set means some lane is misaligned; a bit at or above the window
#: bound means some lane indexes beyond it (both bounds are powers of two).
_BAD_ADDR = 7 | (MASK64 ^ (DENSE_WORDS * 8 - 1))


# ---------------------------------------------------------------------------
# Scalar (masked) steps — reference operand semantics, one lane at a time
# ---------------------------------------------------------------------------


def _build_scalar(inst: Instruction):
    """Compile one static instruction into ``step(ints, fps, mget, mput, k)``.

    Executes the instruction for lane column ``k`` only, returning the next
    pc (or :data:`HALT_CODE`) and raising exactly what the scalar engines
    raise.  Used while lanes are diverged and to replay potentially-faulting
    vector memory ops.
    """
    op = inst.op
    kind = op.kind
    fall = inst.pc + 1

    if kind is OpKind.ALU:
        fn = op.alu_fn
        s1, s2, dst = inst.src1, inst.src2, inst.writes
        imm = inst.imm if inst.imm is not None else 0
        if s1 is not None and s2 is not None:

            def step(ints, fps, mget, mput, k, _s1=s1, _s2=s2, _dst=dst):
                a = int(_row(ints, fps, _s1)[k])
                b = int(_row(ints, fps, _s2)[k])
                if _dst is not None:
                    _row(ints, fps, _dst)[k] = fn(a, b) & MASK64
                return fall

        elif s1 is not None:

            def step(ints, fps, mget, mput, k, _s1=s1, _dst=dst):
                a = int(_row(ints, fps, _s1)[k])
                if _dst is not None:
                    _row(ints, fps, _dst)[k] = fn(a, imm) & MASK64
                return fall

        else:
            const_masked = fn(0, imm) & MASK64

            def step(ints, fps, mget, mput, k, _dst=dst):
                if _dst is not None:
                    _row(ints, fps, _dst)[k] = const_masked
                return fall

        return step

    if kind is OpKind.LOAD:
        s1, dst = inst.src1, inst.writes
        off = inst.imm or 0

        def step(ints, fps, mget, mput, k, _s1=s1, _dst=dst):
            addr = (int(_row(ints, fps, _s1)[k]) + off) & MASK64
            if addr & 7:
                raise ValueError(f"unaligned access at address {addr:#x}")
            value = mget[k](addr >> 3)
            if _dst is not None:
                _row(ints, fps, _dst)[k] = value
            return fall

        return step

    if kind is OpKind.STORE:
        s1, s2 = inst.src1, inst.src2
        off = inst.imm or 0

        def step(ints, fps, mget, mput, k, _s1=s1, _s2=s2):
            addr = (int(_row(ints, fps, _s1)[k]) + off) & MASK64
            if addr & 7:
                raise ValueError(f"unaligned access at address {addr:#x}")
            mput[k](addr >> 3, int(_row(ints, fps, _s2)[k]))
            return fall

        return step

    if kind is OpKind.BRANCH:
        s1 = inst.src1
        target = inst.target_pc
        flat = _FLAT_CONDS.get(op.name)
        if flat is None:  # pragma: no cover - every shipped branch is mapped
            cond_fn = op.cond_fn
            flat = lambda v, _fn=cond_fn: _fn(v)  # noqa: E731

        def step(ints, fps, mget, mput, k, _s1=s1):
            return target if flat(int(_row(ints, fps, _s1)[k])) else fall

        return step

    if kind is OpKind.JUMP:
        target = inst.target_pc

        def step(ints, fps, mget, mput, k):
            return target

        return step

    if kind is OpKind.CALL:
        target = inst.target_pc
        return_pc = inst.pc + 1
        dst = inst.writes

        def step(ints, fps, mget, mput, k, _dst=dst):
            if _dst is not None:
                _row(ints, fps, _dst)[k] = return_pc
            return target

        return step

    if kind is OpKind.INDIRECT:
        s1 = inst.src1

        def step(ints, fps, mget, mput, k, _s1=s1):
            return int(_row(ints, fps, _s1)[k])

        return step

    if kind is OpKind.HALT:

        def step(ints, fps, mget, mput, k):
            return HALT_CODE

        return step

    def step(ints, fps, mget, mput, k):  # NOP
        return fall

    return step


class BatchedProgram:
    """Once-per-program batched decode: vector builders + scalar steps."""

    __slots__ = ("program", "builders", "scalars")

    def __init__(self, program: Program) -> None:
        self.program = program
        self.builders = tuple(_build_vector(inst) for inst in program)
        self.scalars = tuple(_build_scalar(inst) for inst in program)


def batched_decode(program: Program) -> BatchedProgram:
    """Batched-decode ``program`` once; repeated calls return the cache."""
    cached: Optional[BatchedProgram] = getattr(program, "_batched_cache", None)
    if cached is None:
        cached = BatchedProgram(program)
        program._batched_cache = cached  # type: ignore[attr-defined]
    return cached


def _pow2_at_least(n: int) -> int:
    cap = 4096
    while cap < n:
        cap *= 2
    return cap


# ---------------------------------------------------------------------------
# Batch run loop
# ---------------------------------------------------------------------------


def run_batch(
    program: Program,
    memories: Sequence[Memory],
    max_instructions: Union[int, Sequence[int]] = 1_000_000,
    states: Optional[Sequence[ArchState]] = None,
    strict_budget: bool = False,
) -> List[LaneResult]:
    """Run ``program`` over ``len(memories)`` lanes simultaneously.

    Each lane owns one :class:`Memory` (mutated in place) and one
    :class:`ArchState` (fresh ones are created when ``states`` is omitted).
    ``max_instructions`` is either one shared budget or a per-lane sequence.
    Returns one :class:`LaneResult` per input lane, in input order; lane
    faults are recorded on ``LaneResult.error`` rather than raised, except
    under ``strict_budget`` where the first budget exhaustion (lowest lane
    index) raises :class:`BudgetExceeded` naming the lane and its pc.
    """
    total_lanes = len(memories)
    if states is not None and len(states) != total_lanes:
        raise ValueError(
            f"states/memories length mismatch: {len(states)} != {total_lanes}"
        )
    if states is None:
        states = [ArchState() for _ in range(total_lanes)]
    if isinstance(max_instructions, int):
        budgets = [max_instructions] * total_lanes
    else:
        budgets = [int(b) for b in max_instructions]
        if len(budgets) != total_lanes:
            raise ValueError(
                f"max_instructions/memories length mismatch: "
                f"{len(budgets)} != {total_lanes}"
            )
    if total_lanes == 0:
        return []

    bp = batched_decode(program)
    builders = bp.builders
    scalars = bp.scalars
    n = len(program)
    name = program.name
    entry = program.entry

    ints = np.zeros((NUM_INT_REGS, total_lanes), dtype=_U64)
    fps = np.zeros((NUM_FP_REGS, total_lanes), dtype=_U64)
    for k, st in enumerate(states):
        st.pc = entry
        ints[:, k] = st.int_regs
        fps[:, k] = st.fp_regs

    # --- dense memory window -------------------------------------------
    mem = _MemCtx()
    max_key = -1
    for m in memories:
        if m._words:
            mk = max(m._words)
            if mk > max_key:
                max_key = mk
    if max_key < DENSE_WORDS:
        # All initial contents fit the window: move them out of the dicts
        # into the dense image (they return at lane retirement).  The
        # initial footprint bound caps the retirement scan.
        dense = np.zeros((total_lanes, DENSE_WORDS), dtype=_U64)
        for k, m in enumerate(memories):
            words = m._words
            if words:
                drow = dense[k]
                for ix in list(words):
                    drow[ix] = words.pop(ix)
        mem.dense = dense
        mem.init_words = _pow2_at_least(max_key + 1)
        init_words = mem.init_words
        dirty = mem.dirty

        def _make_get(drow, raw_get):
            def get(ix):
                if ix < DENSE_WORDS:
                    return int(drow[ix])
                return raw_get(ix)

            return get

        def _make_put(drow, raw_put):
            def put(ix, v):
                if ix < DENSE_WORDS:
                    drow[ix] = v
                    if ix >= init_words:
                        dirty.add(ix)
                else:
                    raw_put(ix, v)

            return put

    lane_ids = list(range(total_lanes))
    pcs = [entry] * total_lanes
    executed = [0] * total_lanes
    div: List[Optional[List[int]]] = [None]
    results: List[Optional[LaneResult]] = [None] * total_lanes

    def refresh_mem() -> None:
        """Rebuild the per-live-lane views of the memory context."""
        if mem.dense is None:
            mem.mget = [memories[gid].load_word_index for gid in lane_ids]
            mem.mput = [memories[gid].store_word_index for gid in lane_ids]
        else:
            mem.rows = np.array(lane_ids, dtype=np.intp)
            mem.mget = [
                _make_get(mem.dense[gid], memories[gid].load_word_index)
                for gid in lane_ids
            ]
            mem.mput = [
                _make_put(mem.dense[gid], memories[gid].store_word_index)
                for gid in lane_ids
            ]

    def bind() -> list:
        L = len(lane_ids)
        return [b(ints, fps, mem, div, L) for b in builders]

    refresh_mem()
    handlers = bind()

    def writeback(col: int) -> None:
        """Flush the dense window row for live column ``col`` to its dict."""
        if mem.dense is None:
            return
        gid = lane_ids[col]
        drow = mem.dense[gid]
        words = memories[gid]._words
        head = drow[: mem.init_words]
        nz = np.flatnonzero(head)
        if len(nz):
            for ix, v in zip(nz.tolist(), head[nz].tolist()):
                words[ix] = v
            head[nz] = 0  # idempotent: a second flush adds nothing
        for ix in mem.dirty:
            v = int(drow[ix])
            if v:
                words[ix] = v
                drow[ix] = 0

    def finalize(col: int, halted: bool, error: Optional[BaseException] = None) -> None:
        gid = lane_ids[col]
        writeback(col)
        st = states[gid]
        st.int_regs = ints[:, col].tolist()
        st.fp_regs = fps[:, col].tolist()
        st.pc = pcs[col]
        results[gid] = LaneResult(
            state=st,
            memory=memories[gid],
            instructions=executed[col],
            halted=halted,
            trace=None,
            error=error,
            lane=gid,
        )

    def compact(dead: Set[int]) -> None:
        nonlocal ints, fps, lane_ids, pcs, executed, budgets, handlers
        keep = [k for k in range(len(lane_ids)) if k not in dead]
        ints = np.ascontiguousarray(ints[:, keep])
        fps = np.ascontiguousarray(fps[:, keep])
        lane_ids = [lane_ids[k] for k in keep]
        pcs = [pcs[k] for k in keep]
        executed = [executed[k] for k in keep]
        budgets = [budgets[k] for k in keep]
        if lane_ids:
            refresh_mem()
            handlers = bind()

    def masked_step(sel: List[int], at_pc: int) -> Set[int]:
        """Execute the instruction at ``at_pc`` for lane columns ``sel``."""
        dead: Set[int] = set()
        if not 0 <= at_pc < n:
            err_msg = f"pc {at_pc} out of range (program {name})"
            for k in sel:
                finalize(k, halted=False, error=SimulationError(err_msg))
                dead.add(k)
            return dead
        step = scalars[at_pc]
        mget, mput = mem.mget, mem.mput
        for k in sel:
            try:
                nxt = step(ints, fps, mget, mput, k)
            except (ValueError, SimulationError) as exc:
                # Fault before commit: pc and commit count stay put.
                finalize(k, halted=False, error=exc)
                dead.add(k)
                continue
            executed[k] += 1
            if nxt == HALT_CODE:
                finalize(k, halted=True)  # pc stays at the halt pc
                dead.add(k)
            else:
                pcs[k] = nxt
        return dead

    lane_instructions = 0
    try:
        while lane_ids:
            Lc = len(lane_ids)

            # Retire budget-exhausted lanes before dispatching anything.
            dead: Set[int] = set()
            for k in range(Lc):
                if executed[k] >= budgets[k]:
                    if strict_budget:
                        raise BudgetExceeded(
                            f"instruction budget exhausted: program {name!r} "
                            f"committed {executed[k]} instructions without "
                            f"halting (budget {budgets[k]}, pc {pcs[k]}) "
                            f"[lane {lane_ids[k]}]"
                        )
                    finalize(k, halted=False)
                    dead.add(k)
            if dead:
                compact(dead)
                continue

            if Lc > 1 and pcs.count(pcs[0]) != Lc:
                # Diverged: scalar-step the minimum-pc lane group.
                leader = min(pcs)
                sel = [k for k in range(Lc) if pcs[k] == leader]
                dead = masked_step(sel, leader)
                lane_instructions += len(sel) - len(dead)
                if dead:
                    compact(dead)
                continue

            # Lockstep segment: all lanes at one pc, vector handlers.
            pc = pcs[0]
            allowance = min(budgets[k] - executed[k] for k in range(Lc))
            steps = 0
            fault: Optional[SimulationError] = None
            ended = None  # None (allowance) | "halt" | "diverge" | "refault"
            while steps < allowance:
                if not 0 <= pc < n:
                    fault = SimulationError(f"pc {pc} out of range (program {name})")
                    break
                code = handlers[pc]()
                if code >= 0:
                    steps += 1
                    pc = code
                    continue
                if code == HALT_CODE:
                    steps += 1
                    ended = "halt"
                    break
                if code == DIVERGE:
                    steps += 1
                    ended = "diverge"
                    break
                ended = "refault"  # nothing committed at this pc yet
                break

            for k in range(Lc):
                executed[k] += steps
            lane_instructions += steps * Lc

            if fault is not None:
                for k in range(Lc):
                    pcs[k] = pc
                for k in range(Lc):
                    finalize(k, halted=False, error=fault)
                compact(set(range(Lc)))
            elif ended == "halt":
                for k in range(Lc):
                    pcs[k] = pc
                for k in range(Lc):
                    finalize(k, halted=True)
                compact(set(range(Lc)))
            elif ended == "diverge":
                pcs = list(div[0])  # type: ignore[arg-type]
                div[0] = None
            elif ended == "refault":
                for k in range(Lc):
                    pcs[k] = pc
                dead = masked_step(list(range(Lc)), pc)
                lane_instructions += Lc - len(dead)
                if dead:
                    compact(dead)
            else:
                # Allowance exhausted: sync pcs; the top of the loop retires
                # (or strict-raises for) whichever lanes are actually out.
                for k in range(Lc):
                    pcs[k] = pc
    finally:
        # Whatever interrupted the batch (strict budget, KeyboardInterrupt),
        # leave every un-retired lane's Memory/ArchState consistent with the
        # instructions it actually committed.
        for col in range(len(lane_ids)):
            gid = lane_ids[col]
            if results[gid] is None:
                writeback(col)
                st = states[gid]
                st.int_regs = ints[:, col].tolist()
                st.fp_regs = fps[:, col].tolist()
                st.pc = pcs[col]
        from ..core.metrics import get_metrics

        metrics = get_metrics()
        metrics.inc("sim.runs_batched")
        metrics.inc("sim.batch_lanes", total_lanes)
        metrics.inc("sim.lane_instructions", lane_instructions)

    return results  # type: ignore[return-value]
