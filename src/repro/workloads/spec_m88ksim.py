"""``m88ksim`` model — a CPU-simulator interpreter loop.

SPEC95 m88ksim simulates a Motorola 88100.  Its dominant behaviour is a
fetch/decode/dispatch loop over a simulated program whose architectural state
changes very slowly: most guest instructions read state words that keep their
values for thousands of iterations.  In the paper m88ksim has the highest
prediction coverage of the suite (Table 2: 29% of instructions predicted by
drvp-dead at 99.3% accuracy, 57% coverage for LVP), the largest speedups in
Figures 5/6, and needs *no* compiler assistance (Section 7.3).

Model structure (and why value prediction pays off here):

* The **guest pc lives in memory** (the simulated CPU's state block), so the
  interpreter loop carries a serial load→compute→store→load chain — as the
  real interpreter does through its CPU-state structure.
* The **guest instruction fetch** (``ld r1, 0(r11)``) is the chain's hot
  link: guest code runs in loops, so per-host-pc the fetched word repeats in
  long runs — exactly the same-register reuse RVP exploits.  Decode is serial
  (compressed fields: ``rd`` and ``imm`` are stored XORed against the
  previous field), so everything downstream of the fetch waits on it unless
  the value is predicted.
* Guest ``cmp`` instructions are **conditional guest branches** whose
  direction depends on the (near-constant) status word; on those iterations
  the next guest pc depends on the whole decode chain, which is what makes
  the fetch-load prediction so valuable.
* Guest ``move`` instructions form dataflow chains through the simulated
  register file (the next move usually reads what the previous one wrote),
  adding predictable store-to-load links.

Opcode classes: ``move`` (guest reg copy), ``cmp`` (conditional guest branch
on the status word), ``ldsim`` (guest memory read), ``inc`` (bump the guest
cycle counter — the only frequent mutation).
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import R
from ..sim.memory import Memory
from .base import HEADER_BASE, Workload
from . import data

_CODE = 0
_SIMREGS = 1
_SIMMEM = 2
_STATE = 3

_N_SIMREGS = 16
_SIMMEM_WORDS = 64
_N_CODE = 256  # guest instructions (power of two, for mask wraparound)
_OP_MOVE, _OP_CMP, _OP_LDSIM, _OP_INC = 0, 1, 2, 3

# State block layout (byte offsets)
_ST_STATUS = 0
_ST_CYCLES = 8
_ST_FLAG = 16
_ST_LASTMEM = 24
_ST_PC = 32


class M88ksimWorkload(Workload):
    name = "m88ksim"
    category = "C"
    description = "CPU-simulator dispatch loop over slowly-changing guest state"

    def _build_program(self) -> Program:
        b = ProgramBuilder(self.name)
        code_base = self.array_base(_CODE)
        simregs_base = self.array_base(_SIMREGS)
        simmem_base = self.array_base(_SIMMEM)
        state_base = self.array_base(_STATE)
        pc_mask = _N_CODE * 8 - 1
        with b.procedure("main"):
            b.li(R[9], HEADER_BASE)
            b.ld(R[10], R[9], 0)  # total interpreter steps
            b.li(R[15], code_base)
            b.li(R[12], simregs_base)
            b.li(R[13], state_base)
            b.li(R[9], simmem_base)
            b.li(R[14], 0)  # step counter
            b.label("loop")
            b.ld(R[11], R[13], _ST_PC)  # guest pc (memory-carried chain)
            b.ld(R[1], R[11], 0)  # guest instruction word (runs -> RVP)
            # Serial decode: compressed fields unXORed one after another.
            b.and_(R[2], R[1], 3)  # opcode
            b.srl(R[3], R[1], 2)
            b.and_(R[3], R[3], 15)  # rs
            b.srl(R[4], R[1], 6)
            b.and_(R[4], R[4], 15)
            b.xor(R[4], R[4], R[3])  # rd = field ^ rs
            b.srl(R[5], R[1], 10)
            b.xor(R[5], R[5], R[4])  # imm = field ^ rd
            b.ld(R[6], R[13], _ST_STATUS)  # guest status word (near-constant)
            # Sequential next-pc (guest cmp may override below).
            b.sub(R[7], R[11], R[15])
            b.addi(R[7], R[7], 8)
            b.and_(R[7], R[7], pc_mask)
            b.add(R[7], R[7], R[15])
            # Dispatch.
            b.beq(R[2], "op_move")
            b.subi(R[17], R[2], _OP_CMP)
            b.beq(R[17], "op_cmp")
            b.subi(R[17], R[2], _OP_LDSIM)
            b.beq(R[17], "op_ldsim")
            # op_inc: bump the guest cycle counter.
            b.ld(R[8], R[13], _ST_CYCLES)
            b.addi(R[8], R[8], 1)
            b.st(R[8], R[13], _ST_CYCLES)
            b.br("next")
            b.label("op_move")
            b.sll(R[17], R[3], 3)
            b.add(R[17], R[17], R[12])
            b.ld(R[8], R[17], 0)  # guest register rs (pooled values -> RVP)
            b.sll(R[18], R[4], 3)
            b.add(R[18], R[18], R[12])
            b.st(R[8], R[18], 0)
            b.br("next")
            b.label("op_cmp")
            # Guest conditional branch: taken iff imm < status.
            b.cmplt(R[17], R[5], R[6])
            b.st(R[17], R[13], _ST_FLAG)
            b.beq(R[17], "next")
            # Taken: target = code_base + (imm*8 & mask) — depends on the
            # whole decode chain, making the fetched word's value critical.
            b.sll(R[7], R[5], 3)
            b.and_(R[7], R[7], pc_mask)
            b.add(R[7], R[7], R[15])
            b.br("next")
            b.label("op_ldsim")
            b.and_(R[17], R[5], _SIMMEM_WORDS - 1)
            b.sll(R[17], R[17], 3)
            b.add(R[17], R[17], R[9])
            b.ld(R[8], R[17], 0)  # guest memory word (near-constant)
            b.st(R[8], R[13], _ST_LASTMEM)
            b.label("next")
            b.st(R[7], R[13], _ST_PC)
            b.addi(R[14], R[14], 1)
            b.cmplt(R[17], R[14], R[10])
            b.bne(R[17], "loop")
            b.halt()
        return b.build()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        n_steps = self.n(1600)

        # Guest program: runs of repeated encodings (guest loops) with a
        # skewed opcode mix; moves chain through the guest register file.
        op_mix = [_OP_MOVE] * 4 + [_OP_CMP] * 2 + [_OP_LDSIM] * 2 + [_OP_INC]
        extra = [int(rng.choice([_OP_MOVE, _OP_CMP, _OP_LDSIM], p=[0.5, 0.25, 0.25])) for _ in range(12)]
        encodings = []
        prev_rd = 0
        for op in op_mix + extra:
            rs = prev_rd if rng.random() < 0.7 else int(rng.integers(_N_SIMREGS))
            rd = int(rng.integers(_N_SIMREGS))
            if op == _OP_MOVE:
                prev_rd = rd
            imm = int(rng.integers(64))
            # Fields are stored pre-XORed (the decoder undoes this serially).
            rd_field = rd ^ rs
            imm_field = imm ^ rd
            encodings.append(op | (rs << 2) | (rd_field << 6) | (imm_field << 10))
        code = data.run_lengths(rng, _N_CODE, encodings, mean_run=20.0)

        pool = [int(v) for v in rng.integers(1, 1 << 12, size=3)]
        simregs = [pool[int(rng.integers(len(pool)))] for _ in range(_N_SIMREGS)]
        simmem = data.run_lengths(rng, _SIMMEM_WORDS, pool, mean_run=12.0)
        status = 32  # guest branches: taken iff imm < 32 (static per guest pc)

        self.write_header(memory, n_steps)
        memory.write_words(self.array_base(_CODE), code)
        memory.write_words(self.array_base(_SIMREGS), simregs)
        memory.write_words(self.array_base(_SIMMEM), simmem)
        state = [0] * 8
        state[_ST_STATUS // 8] = status
        state[_ST_PC // 8] = self.array_base(_CODE)
        memory.write_words(self.array_base(_STATE), state)
