"""``li`` model — a Lisp interpreter walking a cons heap.

SPEC95 li (xlisp) spends its time chasing car/cdr pointers and touching a
small set of shared atoms.  In the paper li is the showcase for
compiler-created reuse: it gains another 8% from the dead-register
optimisation (Figure 3) and appears in the Figure 7 reallocation study.

The model recursively sums a list-of-lists heap built by
:func:`repro.workloads.data.cons_heap`.  Two deliberate structural choices
reproduce li's profile:

* **Clobbered last-value reuse (Figure 2c).**  In the leaf loop the cdr is
  loaded into the *same* register that just received the car, so the car
  load's strong last-value locality (atoms come from a shared pool) is not
  visible as same-register reuse until the reallocator gives the cdr load its
  own register.
* **Dead-register correlation (Figure 2a).**  The loop is unrolled by two
  with alternating car registers; consecutive atoms frequently match, so each
  car load's value usually equals the content of the *other* (dead by then)
  car register.

Recursion uses the real calling convention (jsr/ret, stack frames), which
also exercises the register allocator's volatile/non-volatile constraints.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import R, RETURN_ADDRESS, STACK_POINTER
from ..sim.memory import Memory
from .base import HEADER_BASE, STACK_BASE, Workload
from . import data

_HEAP = 0


class LiWorkload(Workload):
    name = "li"
    category = "C"
    description = "Lisp-style recursive cons-heap walker with shared atoms"

    def _build_program(self) -> Program:
        b = ProgramBuilder(self.name)
        sp = STACK_POINTER
        ra = RETURN_ADDRESS
        with b.procedure("main"):
            b.li(sp, STACK_BASE)
            b.li(R[9], HEADER_BASE)
            b.ld(R[10], R[9], 0)  # repetitions of the whole walk
            b.ld(R[11], R[9], 8)  # master list root address
            b.li(R[12], 0)  # grand total
            b.label("outer")
            b.mov(R[16], R[11])
            b.jsr("sum_list", link=ra)
            b.add(R[12], R[12], R[0])
            b.subi(R[10], R[10], 1)
            b.bne(R[10], "outer")
            b.st(R[12], R[9], 16)
            b.halt()
        with b.procedure("sum_list"):
            # Args: r16 = list head.  Returns r0 = sum of atoms (untagged).
            # Frame: saves ra, r9 (cursor), r13/r14 (car registers), r10 (acc).
            b.subi(sp, sp, 40)
            b.st(ra, sp, 0)
            b.st(R[9], sp, 8)
            b.st(R[10], sp, 16)
            b.st(R[13], sp, 24)
            b.st(R[14], sp, 32)
            b.mov(R[9], R[16])
            b.li(R[10], 0)
            b.label("pair_loop")
            b.beq(R[9], "done")
            # --- first cell: car into r13 ---
            b.ld(R[13], R[9], 0)
            b.and_(R[2], R[13], 1)
            b.bne(R[2], "atom_a")
            b.mov(R[16], R[13])
            b.jsr("sum_list", link=ra)
            b.add(R[10], R[10], R[0])
            b.br("follow_a")
            b.label("atom_a")
            b.sra(R[3], R[13], 1)
            b.add(R[10], R[10], R[3])
            b.label("follow_a")
            # Figure 2c: the cdr lands in r13 too, clobbering the atom that
            # the next first-cell car load would otherwise have matched.
            b.ld(R[13], R[9], 8)
            b.mov(R[9], R[13])
            b.beq(R[9], "done")
            # --- second cell: car into r14 (dead-correlates with r13's atom) ---
            b.ld(R[14], R[9], 0)
            b.and_(R[2], R[14], 1)
            b.bne(R[2], "atom_b")
            b.mov(R[16], R[14])
            b.jsr("sum_list", link=ra)
            b.add(R[10], R[10], R[0])
            b.br("follow_b")
            b.label("atom_b")
            b.sra(R[3], R[14], 1)
            b.add(R[10], R[10], R[3])
            b.label("follow_b")
            b.ld(R[4], R[9], 8)
            b.mov(R[9], R[4])
            b.br("pair_loop")
            b.label("done")
            b.mov(R[0], R[10])
            b.ld(ra, sp, 0)
            b.ld(R[9], sp, 8)
            b.ld(R[10], sp, 16)
            b.ld(R[13], sp, 24)
            b.ld(R[14], sp, 32)
            b.addi(sp, sp, 40)
            b.ret(ra)
        return b.build()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        n_cells = self.n(1600)
        repetitions = self.n(3)
        heap_base = self.array_base(_HEAP)
        words, root = data.cons_heap(
            rng, heap_base, n_cells, n_atoms=n_cells, atom_reuse=0.9, repeat_prob=0.985, nest_prob=0.02
        )
        self.write_header(memory, repetitions, root)
        memory.write_words(heap_base, words)
