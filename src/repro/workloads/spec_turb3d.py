"""``turb3d`` model — FFT butterflies with grouped twiddle factors.

SPEC95 turb3d simulates isotropic turbulence with FFTs.  Its inner butterfly
loops reuse each twiddle factor across a whole group of butterflies, giving
it the second-highest coverage in the paper (Table 2: 28% drvp-dead, 37%
dead+lv) with essentially no compiler assistance needed — dynamic RVP alone
matches LVP on it.

The model runs butterfly passes: for each group, a twiddle factor is loaded
*inside* the butterfly loop (as an FP-register-starved compiler would emit)
into a dedicated register, so per-PC the load returns the same value for the
whole group — clean same-register reuse.  Butterfly data comes from a smooth
field, adding ordinary last-value locality on the ``a``/``b`` loads.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import F, R
from ..sim.memory import Memory
from .base import HEADER_BASE, SCRATCH_BASE, Workload
from . import data

_DATA = 0
_TWIDDLE = 1
_GROUP = 32  # butterflies per twiddle group


class Turb3dWorkload(Workload):
    name = "turb3d"
    category = "F"
    description = "FFT butterfly passes with per-group constant twiddle factors"

    def _build_program(self) -> Program:
        b = ProgramBuilder(self.name)
        array = self.array_base(_DATA)
        twiddle = self.array_base(_TWIDDLE)
        with b.procedure("main"):
            b.li(R[9], HEADER_BASE)
            b.ld(R[10], R[9], 0)  # passes
            b.ld(R[11], R[9], 8)  # groups per pass
            b.label("pass_loop")
            b.li(R[12], array)  # a cursor
            b.li(R[13], array + 8 * _GROUP)  # b cursor (stride-separated)
            b.li(R[15], twiddle)
            b.li(R[14], 0)  # group counter
            b.label("group_loop")
            b.li(R[8], _GROUP)  # butterflies left in group
            b.label("bfly_loop")
            b.fld(F[1], R[15], 0)  # twiddle: constant within the group
            b.fld(F[2], R[12], 0)  # a (smooth field)
            b.fld(F[3], R[13], 0)  # b (smooth field)
            b.fmul(F[4], F[3], F[1])
            b.fadd(F[5], F[2], F[4])
            b.fsub(F[6], F[2], F[4])
            b.fst(F[5], R[12], 0)
            b.fst(F[6], R[13], 0)
            # Energy renormalisation: the factor table is almost all ones, so
            # the running scale is a serial chain of stable values.
            b.fld(F[8], R[15], 0x40000)  # renorm factor (constant locality)
            b.fmul(F[9], F[9], F[8])  # scale recurrence RVP collapses
            b.addi(R[12], R[12], 8)
            b.addi(R[13], R[13], 8)
            b.subi(R[8], R[8], 1)
            b.bne(R[8], "bfly_loop")
            # Next group: advance past partner block, bump twiddle pointer.
            b.addi(R[12], R[12], 8 * _GROUP)
            b.addi(R[13], R[13], 8 * _GROUP)
            b.addi(R[15], R[15], 8)
            b.addi(R[14], R[14], 1)
            b.cmplt(R[1], R[14], R[11])
            b.bne(R[1], "group_loop")
            b.subi(R[10], R[10], 1)
            b.bne(R[10], "pass_loop")
            b.li(R[2], SCRATCH_BASE)
            b.fst(F[5], R[2], 0)
            b.halt()
        return b.build()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        groups = self.n(40)
        passes = self.n(3)
        n_words = 2 * _GROUP * groups + 2 * _GROUP
        field = data.smooth_field(rng, n_words, levels=6, step_prob=0.05)
        twiddles = [int(v) for v in rng.integers(1, 1 << 10, size=groups + 1)]
        # Renormalisation factors: almost always 1 (value-stable recurrence).
        renorm = data.sparse_values(rng, groups + 1, density=0.06, value_range=(2, 5), fill=1)
        self.write_header(memory, passes, groups)
        memory.write_words(self.array_base(_DATA), field)
        memory.write_words(self.array_base(_TWIDDLE), twiddles)
        memory.write_words(self.array_base(_TWIDDLE) + 0x40000, renorm)
