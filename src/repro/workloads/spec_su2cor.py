"""``su2cor`` model — lattice gauge-field matrix-vector products.

SPEC95 su2cor computes quark-propagator correlations in SU(2) lattice gauge
theory: sweeps over lattice sites multiplying spinor vectors by gauge-link
matrices.  Link matrices are heavily reused across sites (the lattice is
locally ordered), while spinor data is less predictable.  Table 2 reports
moderate coverage (9% drvp-dead, 13% dead+lv at ~99% accuracy); su2cor is in
the Figure 7 reallocation study.

The model sweeps lattice sites two at a time: per site it loads a gauge link
(drawn from a small quantised pool with spatial runs) and a spinor component
(weakly structured), then accumulates ``link*spinor``:

* Link loads alternate between ``f1`` (site A) and ``f5`` (site B); link runs
  make each load's value match the other, then-dead register — legal
  dead-register merges for the reallocator.
* Site A's link register ``f1`` is clobbered by a normalisation temporary at
  the end of the iteration (Figure 2c), so A's run-locality needs the
  last-value reallocation.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import F, R
from ..sim.memory import Memory
from .base import HEADER_BASE, SCRATCH_BASE, Workload
from . import data

_LINKS = 0
_SPINOR = 1
_OUT = 2


class Su2corWorkload(Workload):
    name = "su2cor"
    category = "F"
    description = "Lattice sweep: pooled gauge links times weakly-structured spinors"

    def _build_program(self) -> Program:
        b = ProgramBuilder(self.name)
        links = self.array_base(_LINKS)
        spinor = self.array_base(_SPINOR)
        out = self.array_base(_OUT)
        with b.procedure("main"):
            b.li(R[9], HEADER_BASE)
            b.ld(R[10], R[9], 0)  # sweeps
            b.ld(R[11], R[9], 8)  # site pairs per sweep
            b.label("sweep_loop")
            b.li(R[12], links)
            b.li(R[13], spinor)
            b.li(R[15], out)
            b.li(R[14], 0)
            b.label("site_loop")
            # --- site A ---
            b.fld(F[1], R[12], 0)  # gauge link (pool + runs)
            b.fld(F[2], R[13], 0)  # spinor component
            b.fmul(F[3], F[1], F[2])
            # --- site B ---
            b.fld(F[5], R[12], 8)  # gauge link (dead-correlates with f1)
            b.fld(F[6], R[13], 8)
            b.fmul(F[7], F[5], F[6])
            b.fadd(F[4], F[3], F[7])
            b.fst(F[4], R[15], 0)
            # Unitarity check: link mismatch is 0 within runs, so the
            # accumulated violation is a serial chain of stable values.
            b.fsub(F[10], F[1], F[5])
            b.fmul(F[11], F[10], F[10])
            b.fadd(F[9], F[9], F[11])
            # Figure 2c: normalisation temporary clobbers f1.
            b.fsub(F[1], F[3], F[7])
            b.fst(F[1], R[15], 0x80000)
            b.addi(R[12], R[12], 16)
            b.addi(R[13], R[13], 16)
            b.addi(R[15], R[15], 8)
            b.addi(R[14], R[14], 1)
            b.cmplt(R[1], R[14], R[11])
            b.bne(R[1], "site_loop")
            b.subi(R[10], R[10], 1)
            b.bne(R[10], "sweep_loop")
            b.halt()
        return b.build()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        pairs = self.n(600)
        sweeps = self.n(4)
        # Quantised SU(2) link pool: 6 distinct values, strong spatial runs.
        pool = [int(v) for v in rng.integers(1, 1 << 10, size=6)]
        link_values = data.run_lengths(rng, 2 * pairs, pool, mean_run=8.0)
        spinor_values = data.smooth_field(rng, 2 * pairs, levels=24, step_prob=0.55)
        self.write_header(memory, sweeps, pairs)
        memory.write_words(self.array_base(_LINKS), link_values)
        memory.write_words(self.array_base(_SPINOR), spinor_values)
