"""Synthetic SPEC95-model workloads (see DESIGN.md Section 2 for the mapping)."""

from .base import DATA_BASE, HEADER_BASE, SCRATCH_BASE, STACK_BASE, Workload
from .suite import C_SPEC, F_SPEC, IR_AUTHORED, WORKLOAD_CLASSES, all_workloads, make_workload

__all__ = [
    "DATA_BASE",
    "HEADER_BASE",
    "SCRATCH_BASE",
    "STACK_BASE",
    "Workload",
    "C_SPEC",
    "F_SPEC",
    "IR_AUTHORED",
    "WORKLOAD_CLASSES",
    "all_workloads",
    "make_workload",
]
