"""Workload registry: the nine SPEC95 models the paper evaluates, plus the
IR-authored extras built through the SSA mid-end."""

from __future__ import annotations

from typing import Dict, List, Type

from .base import Workload
from .ir_dotprod import IrDotprodWorkload
from .ir_stencil import IrStencilWorkload
from .spec_go import GoWorkload
from .spec_hydro2d import Hydro2dWorkload
from .spec_ijpeg import IjpegWorkload
from .spec_li import LiWorkload
from .spec_m88ksim import M88ksimWorkload
from .spec_mgrid import MgridWorkload
from .spec_perl import PerlWorkload
from .spec_su2cor import Su2corWorkload
from .spec_turb3d import Turb3dWorkload

#: The paper's program order (Figures 3-8): C SPEC first, then F SPEC —
#: followed by the IR-authored workloads (not part of the paper's figures,
#: but first-class citizens of every runner and pass).
WORKLOAD_CLASSES: Dict[str, Type[Workload]] = {
    "go": GoWorkload,
    "ijpeg": IjpegWorkload,
    "li": LiWorkload,
    "m88ksim": M88ksimWorkload,
    "perl": PerlWorkload,
    "hydro2d": Hydro2dWorkload,
    "mgrid": MgridWorkload,
    "su2cor": Su2corWorkload,
    "turb3d": Turb3dWorkload,
    "dotprod": IrDotprodWorkload,
    "stencil": IrStencilWorkload,
}

C_SPEC = ("go", "ijpeg", "li", "m88ksim", "perl")
F_SPEC = ("hydro2d", "mgrid", "su2cor", "turb3d")

#: Workloads authored against :mod:`repro.ir` (programs emitted by the SSA
#: mid-end's allocator/lowerer rather than written register-by-register).
IR_AUTHORED = ("dotprod", "stencil")


def make_workload(name: str, scale: float = 1.0) -> Workload:
    """Instantiate a workload by benchmark name."""
    try:
        cls = WORKLOAD_CLASSES[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; choose from {sorted(WORKLOAD_CLASSES)}") from None
    return cls(scale=scale)


def all_workloads(scale: float = 1.0) -> List[Workload]:
    """All registered workloads: the paper's nine in figure order, then the
    IR-authored extras."""
    return [make_workload(name, scale=scale) for name in WORKLOAD_CLASSES]
