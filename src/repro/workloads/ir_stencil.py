"""``stencil`` model — 1-D three-point FP stencil sweeps, authored in the IR.

The floating-point companion to :mod:`repro.workloads.ir_dotprod`: built
with :class:`repro.ir.builder.IRBuilder`, so the ping-pong buffer pointers
(swapped every sweep) and the sliding window of neighbour loads are IR
temporaries that SSA construction threads through phis, and the emitted
register assignment comes out of the mid-end's allocator.

Locality structure: the grid is a quantised smooth field with zero-padded
boundary runs (:func:`repro.workloads.data.smooth_field`), so the three
neighbour loads show the F-SPEC pattern — heavy last-value and
group-constant reuse, with each load's value frequently sitting in one of
the *other* window registers from the previous iteration (dead-register
correlation across the sliding window).
"""

from __future__ import annotations

import numpy as np

from ..isa.program import Program
from ..sim.memory import Memory
from .base import HEADER_BASE, SCRATCH_BASE, Workload
from . import data

_SRC = 0
_DST = 1


class IrStencilWorkload(Workload):
    name = "stencil"
    category = "F"
    description = "IR-authored ping-pong 3-point stencil over a smooth zero-padded grid"

    def _build_program(self) -> Program:
        from ..ir import FP, IRBuilder

        b = IRBuilder(self.name)
        f = b.function("main")
        f.block("main")
        hdr = f.var("hdr")
        f.li(hdr, HEADER_BASE)
        sweeps = f.var("sweeps")
        f.ld(sweeps, hdr, 0)
        interior = f.var("interior")  # number of interior points (n - 2)
        f.ld(interior, hdr, 8)
        src = f.var("src")
        f.li(src, self.array_base(_SRC))
        dst = f.var("dst")
        f.li(dst, self.array_base(_DST))
        w0 = f.var("w0", FP)
        f.fli(w0, 1)
        w1 = f.var("w1", FP)
        f.fli(w1, 2)

        f.block("sweep")
        p = f.var("p")
        f.add(p, src, 8)  # first interior point
        q = f.var("q")
        f.add(q, dst, 8)
        i = f.var("i")
        f.mov(i, interior)

        f.block("point")
        left = f.var("left", FP)
        f.fld(left, p, -8)
        mid = f.var("mid", FP)
        f.fld(mid, p, 0)
        right = f.var("right", FP)
        f.fld(right, p, 8)
        edge = f.var("edge", FP)
        f.fadd(edge, left, right)
        scaled = f.var("scaled", FP)
        f.fmul(scaled, mid, w1)
        new = f.var("new", FP)
        f.fadd(new, edge, scaled)
        f.fst(new, q, 0)
        f.add(p, p, 8)
        f.add(q, q, 8)
        f.sub(i, i, 1)
        f.bne(i, "point")

        f.block("swap")
        tmp = f.var("tmp")
        f.mov(tmp, src)
        f.mov(src, dst)
        f.mov(dst, tmp)
        f.sub(sweeps, sweeps, 1)
        f.bne(sweeps, "sweep")

        f.block("end")
        out = f.var("out")
        f.li(out, SCRATCH_BASE)
        f.st(src, out, 0)  # which buffer holds the final field
        f.halt()
        return b.program()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        n = self.n(68)
        sweeps = self.n(13)
        self.write_header(memory, sweeps, n - 2)
        grid = data.smooth_field(rng, n, levels=8, step_prob=0.12, zero_frac=0.2)
        grid[0] = grid[-1] = 0  # fixed boundary
        memory.write_words(self.array_base(_SRC), grid)
        # The destination buffer starts as a copy so boundary cells (never
        # written by the sweep) stay consistent after the ping-pong swap.
        memory.write_words(self.array_base(_DST), grid)
