"""Workload framework.

A :class:`Workload` pairs one fixed :class:`Program` (the "binary") with a
family of memory images (the "inputs").  The paper profiles on the SPEC95
*train* inputs and measures on *ref*; we reproduce that split: ``train`` and
``ref`` memory images are drawn from the same distributions with different
seeds, and the program text never changes between them.

Each of the nine workload classes models the value-locality *structure* of one
SPEC95 benchmark the paper evaluates — see DESIGN.md Section 2 for why this
substitution is faithful.  The structural levers are:

* run-length / sparsity / Zipf reuse of loaded data (last-value and constant
  locality),
* correlated arrays and shared heap atoms (dead/live-register correlation,
  Figure 2a),
* deliberately tight register allocation that clobbers a load's destination
  register inside the loop (the Figure 2c pattern, which the last-value
  reallocation can undo),
* branchiness and pointer chasing (go / li / perl) versus regular FP loops
  (hydro2d / mgrid / su2cor / turb3d).
"""

from __future__ import annotations

import abc
import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from ..isa.program import Program
from ..sim.memory import Memory

#: Memory-map conventions shared by all workloads (byte addresses).
HEADER_BASE = 0x1000  # per-workload scalar parameters (loop counts, bases)
DATA_BASE = 0x1_0000  # first data array
DATA_STRIDE = 0x10_0000  # spacing between major arrays
SCRATCH_BASE = 0xF0_0000  # outputs / scratch
STACK_BASE = 0xE0_0000  # stack pointer initial value (grows down)

INPUT_NAMES = ("train", "ref")


class Workload(abc.ABC):
    """One benchmark model: a fixed program plus seeded memory images."""

    #: short benchmark name, e.g. ``"li"``
    name: str = ""
    #: ``"C"`` (integer SPEC) or ``"F"`` (floating-point SPEC)
    category: str = "C"
    #: one-line description of what the model captures
    description: str = ""

    def __init__(self, scale: float = 1.0) -> None:
        """``scale`` multiplies the default data sizes / iteration counts."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self._program: Optional[Program] = None

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _build_program(self) -> Program:
        """Construct the (input-independent) program."""

    @abc.abstractmethod
    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        """Fill ``memory`` with one input image (header + data arrays)."""

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def program(self) -> Program:
        if self._program is None:
            self._program = self._build_program()
        return self._program

    def seed(self, input_name: str) -> int:
        """Deterministic seed for an input image."""
        if input_name not in INPUT_NAMES:
            raise ValueError(f"unknown input {input_name!r}; expected one of {INPUT_NAMES}")
        return zlib.crc32(f"{self.name}:{input_name}".encode())

    def memory(self, input_name: str = "ref") -> Memory:
        rng = np.random.default_rng(self.seed(input_name))
        memory = Memory()
        self._populate_memory(memory, rng)
        return memory

    def build(self, input_name: str = "ref") -> Tuple[Program, Memory]:
        return self.program, self.memory(input_name)

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def n(self, base: int, minimum: int = 1) -> int:
        """Scale an element count."""
        return max(minimum, int(round(base * self.scale)))

    @staticmethod
    def write_header(memory: Memory, *values: int) -> None:
        """Write scalar parameters at HEADER_BASE (word slots 0, 1, ...)."""
        memory.write_words(HEADER_BASE, values)

    @staticmethod
    def array_base(index: int) -> int:
        """Byte address of major data array ``index``."""
        return DATA_BASE + index * DATA_STRIDE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name} scale={self.scale}>"
