"""``perl`` model — hash-table driven interpreter.

SPEC95 perl interprets scripts dominated by associative-array operations.  In
the paper perl shows low-to-moderate coverage (Table 2: 8% drvp-dead at 99.1%
accuracy) and small speedups.

The model executes an "op stream": each step fetches a key from a Zipf-reused
key stream, hashes it (multiplicative hash), probes an open-addressed hash
table (compare key, linear re-probe on miss), fetches the associated value
and accumulates it; a small fraction of steps update the entry's counter
field.  Popular keys mean popular table entries: the value loads for hot keys
return the same value repeatedly, but they alternate between entries, so the
locality is spread across LVP/RVP less cleanly than in m88ksim — which is the
point.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import R
from ..sim.memory import Memory
from .base import HEADER_BASE, SCRATCH_BASE, Workload
from . import data

_KEYS = 0
_TABLE = 1
_TABLE_SLOTS = 32  # power of two; 3 words per slot: key, value, counter
_HASH_MULT = 0x9E3779B1


class PerlWorkload(Workload):
    name = "perl"
    category = "C"
    description = "Hash-probe interpreter over a Zipf-reused key stream"

    def _build_program(self) -> Program:
        b = ProgramBuilder(self.name)
        keys = self.array_base(_KEYS)
        table = self.array_base(_TABLE)
        with b.procedure("main"):
            b.li(R[9], HEADER_BASE)
            b.ld(R[10], R[9], 0)  # number of ops
            b.li(R[11], keys)  # key-stream cursor
            b.li(R[12], table)
            b.li(R[13], 0)  # accumulator
            b.li(R[14], 0)  # op counter
            b.li(R[15], _HASH_MULT)
            b.label("op_loop")
            b.ld(R[1], R[11], 0)  # key (Zipf stream -> runs of hot keys)
            b.mul(R[2], R[1], R[15])
            b.srl(R[2], R[2], 16)
            b.and_(R[2], R[2], _TABLE_SLOTS - 1)  # slot index
            b.label("probe")
            b.mul(R[3], R[2], 24)
            b.add(R[3], R[3], R[12])  # slot address
            b.ld(R[4], R[3], 0)  # stored key
            b.cmpeq(R[5], R[4], R[1])
            b.bne(R[5], "hit")
            # Linear re-probe.
            b.addi(R[2], R[2], 1)
            b.and_(R[2], R[2], _TABLE_SLOTS - 1)
            b.br("probe")
            b.label("hit")
            b.ld(R[6], R[3], 8)  # value (stable per key -> reuse for hot keys)
            b.add(R[13], R[13], R[6])
            # Every 8th op mutates the entry's counter.
            b.and_(R[7], R[14], 7)
            b.bne(R[7], "no_update")
            b.ld(R[8], R[3], 16)
            b.addi(R[8], R[8], 1)
            b.st(R[8], R[3], 16)
            b.label("no_update")
            b.addi(R[11], R[11], 8)
            b.addi(R[14], R[14], 1)
            b.cmplt(R[7], R[14], R[10])
            b.bne(R[7], "op_loop")
            b.li(R[1], SCRATCH_BASE)
            b.st(R[13], R[1], 0)
            b.halt()
        return b.build()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        n_ops = self.n(900)
        n_keys = 24  # distinct keys actually used
        # Choose distinct keys, then fill the table so every key is present
        # (perfect hashing not required; collisions just cause re-probes).
        key_pool = sorted(int(k) for k in rng.choice(np.arange(1, 1 << 20), size=n_keys, replace=False))
        stream = [key_pool[i] for i in data.zipf_pool(rng, n_ops, n_keys, exponent=1.3)]

        table = [0] * (3 * _TABLE_SLOTS)
        for key in key_pool:
            slot = ((key * _HASH_MULT) >> 16) & (_TABLE_SLOTS - 1)
            while table[3 * slot] != 0:
                slot = (slot + 1) & (_TABLE_SLOTS - 1)
            table[3 * slot] = key
            table[3 * slot + 1] = int(rng.integers(1, 1 << 16))
            table[3 * slot + 2] = 0
        self.write_header(memory, n_ops)
        memory.write_words(self.array_base(_KEYS), stream)
        memory.write_words(self.array_base(_TABLE), table)
