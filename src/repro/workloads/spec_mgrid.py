"""``mgrid`` model — multigrid smoothing with sparse residuals.

SPEC95 mgrid applies multigrid V-cycles whose residual arrays are dominated
by zeros — the paper's canonical *constant locality* case (Section 3: "in
reading a sparse matrix where most entries have value zero, predicting each
value to be zero can have fewer mispredictions than last-value prediction").
mgrid gains 21% from the dead-register optimisation in Figure 3 and is in
the Figure 7 reallocation study.

The model sweeps a residual array (~90% zeros) against a smooth solution
array, unrolled two cells per iteration:

* Residual loads alternate between ``f1`` and ``f5``; since both are almost
  always zero, each load's value matches the *other* (then-dead) register —
  textbook dead-register correlation that legal live-range merging can
  actually exploit (unlike hydro2d's rotating loads).
* The first residual register ``f1`` doubles as a scratch register later in
  the iteration (Figure 2c), so its constant locality is invisible until the
  last-value reallocation frees it.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import F, R
from ..sim.memory import Memory
from .base import HEADER_BASE, SCRATCH_BASE, Workload
from . import data

_RESID = 0
_SOLN = 1


class MgridWorkload(Workload):
    name = "mgrid"
    category = "F"
    description = "Multigrid smoother over ~90%-zero residual arrays"

    def _build_program(self) -> Program:
        b = ProgramBuilder(self.name)
        resid = self.array_base(_RESID)
        soln = self.array_base(_SOLN)
        with b.procedure("main"):
            b.li(R[9], HEADER_BASE)
            b.ld(R[10], R[9], 0)  # V-cycle sweeps
            b.ld(R[11], R[9], 8)  # cell pairs per sweep
            b.fli(F[20], 3)  # smoothing coefficient (register-resident)
            b.fli(F[9], 0)  # FP zero constant (the paper's 'constant locality')
            b.label("sweep_loop")
            b.li(R[12], resid)
            b.li(R[13], soln)
            b.li(R[14], 0)
            b.label("pair_loop")
            # --- cell A ---
            b.fld(F[1], R[12], 0)  # residual (mostly 0)
            b.fmul(F[2], F[1], F[1])  # r^2 (mostly 0 -> stable)
            b.fadd(F[9], F[9], F[2])  # residual norm: the serial chain RVP breaks
            b.fbeq(F[1], "cell_b")  # sparse skip, mostly taken
            b.fld(F[3], R[13], 0)  # solution (smooth)
            b.fmul(F[4], F[1], F[20])
            b.fadd(F[3], F[3], F[4])
            b.fst(F[3], R[13], 0)
            b.label("cell_b")
            # --- cell B ---
            b.fld(F[5], R[12], 8)  # residual (mostly 0, dead-correlates with f1)
            b.fmul(F[6], F[5], F[5])
            b.fadd(F[9], F[9], F[6])  # second norm link
            b.fbeq(F[5], "advance")
            b.fld(F[7], R[13], 8)
            b.fmul(F[8], F[5], F[20])
            b.fadd(F[7], F[7], F[8])
            b.fst(F[7], R[13], 8)
            b.label("advance")
            # Figure 2c: the norm snapshot clobbers f1 every iteration,
            # hiding cell A's constant locality from same-register RVP.
            b.fmov(F[1], F[9])
            b.fst(F[1], R[13], 0x80000)
            b.addi(R[12], R[12], 16)
            b.addi(R[13], R[13], 16)
            b.addi(R[14], R[14], 1)
            b.cmplt(R[1], R[14], R[11])
            b.bne(R[1], "pair_loop")
            b.subi(R[10], R[10], 1)
            b.bne(R[10], "sweep_loop")
            b.halt()
        return b.build()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        pairs = self.n(700)
        sweeps = self.n(5)
        residual = data.sparse_values(rng, 2 * pairs, density=0.04, value_range=(1, 1 << 10))
        solution = data.smooth_field(rng, 2 * pairs, levels=8, step_prob=0.1)
        self.write_header(memory, sweeps, pairs)
        memory.write_words(self.array_base(_RESID), residual)
        memory.write_words(self.array_base(_SOLN), solution)
