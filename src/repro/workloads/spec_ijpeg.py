"""``ijpeg`` model — blocked image transform with quantisation.

SPEC95 ijpeg compresses images: blocked DCT, coefficient multiplies and a
quantisation step that maps most high-frequency terms to zero.  In the paper
ijpeg shows modest coverage (Table 2: 5% drvp-dead, 12% LVP at 98% accuracy)
and, like m88ksim, needs no compiler assistance (Section 7.3).

The model processes an image in 8-pixel blocks: each block accumulates
pixel×coefficient products, quantises the accumulator with a shift, and
stores the result.  Two of the eight coefficient loads stay inside the block
loop with dedicated registers — per-PC they fetch the *same* coefficient
every block, giving clean same-register reuse with no compiler help.  Pixels
come from a smooth field, so pixel loads carry moderate last-value locality;
the quantised outputs are mostly zero.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import R
from ..sim.memory import Memory
from .base import HEADER_BASE, SCRATCH_BASE, Workload
from . import data

_IMAGE = 0
_COEFF = 1
_BLOCK = 8


class IjpegWorkload(Workload):
    name = "ijpeg"
    category = "C"
    description = "Blocked image transform with constant coefficients and quantisation"

    def _build_program(self) -> Program:
        b = ProgramBuilder(self.name)
        image = self.array_base(_IMAGE)
        coeff = self.array_base(_COEFF)
        with b.procedure("main"):
            b.li(R[9], HEADER_BASE)
            b.ld(R[10], R[9], 0)  # number of blocks
            b.li(R[11], image)  # pixel cursor
            b.li(R[12], coeff)
            b.li(R[13], SCRATCH_BASE)
            b.li(R[14], 0)  # block counter
            # Six coefficients are register-resident (hoisted by "the
            # compiler"); two stay in the loop and reload every block.
            b.ld(R[22], R[12], 0)
            b.ld(R[23], R[12], 8)
            b.ld(R[24], R[12], 16)
            b.ld(R[25], R[12], 24)
            b.ld(R[27], R[12], 32)
            b.ld(R[28], R[12], 40)
            b.label("block_loop")
            b.li(R[8], 0)  # accumulator
            # Unrolled 8-tap filter over the block.
            b.ld(R[1], R[11], 0)
            b.mul(R[2], R[1], R[22])
            b.add(R[8], R[8], R[2])
            b.ld(R[1], R[11], 8)
            b.mul(R[2], R[1], R[23])
            b.add(R[8], R[8], R[2])
            b.ld(R[1], R[11], 16)
            b.mul(R[2], R[1], R[24])
            b.add(R[8], R[8], R[2])
            b.ld(R[1], R[11], 24)
            b.mul(R[2], R[1], R[25])
            b.add(R[8], R[8], R[2])
            b.ld(R[1], R[11], 32)
            b.mul(R[2], R[1], R[27])
            b.add(R[8], R[8], R[2])
            b.ld(R[1], R[11], 40)
            b.mul(R[2], R[1], R[28])
            b.add(R[8], R[8], R[2])
            b.ld(R[3], R[12], 48)  # in-loop coefficient (constant -> reuse)
            b.ld(R[1], R[11], 48)
            b.mul(R[2], R[1], R[3])
            b.add(R[8], R[8], R[2])
            b.ld(R[4], R[12], 56)  # in-loop coefficient (constant -> reuse)
            b.ld(R[1], R[11], 56)
            b.mul(R[2], R[1], R[4])
            b.add(R[8], R[8], R[2])
            # Quantise: high shift maps most accumulators to 0 or a small int.
            b.sra(R[5], R[8], 16)
            b.sll(R[6], R[14], 3)
            b.add(R[6], R[6], R[13])
            b.st(R[5], R[6], 0)
            b.addi(R[11], R[11], 8 * _BLOCK)
            b.addi(R[14], R[14], 1)
            b.cmplt(R[1], R[14], R[10])
            b.bne(R[1], "block_loop")
            b.halt()
        return b.build()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        blocks = self.n(600)
        pixels = data.smooth_field(rng, blocks * _BLOCK, levels=12, step_prob=0.55)
        coeffs = [3, -2 & 0xFF, 5, 1, 2, 4, 7, 6]
        self.write_header(memory, blocks)
        memory.write_words(self.array_base(_IMAGE), pixels)
        memory.write_words(self.array_base(_COEFF), coeffs)
