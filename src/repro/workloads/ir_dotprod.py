"""``dotprod`` model — blocked integer dot product, authored in the IR.

The first workload written against :class:`repro.ir.builder.IRBuilder`
rather than the flat :class:`~repro.isa.builder.ProgramBuilder`: operands
are IR temporaries, the loop-carried values (pointers, index, accumulators)
become phis under SSA construction, and the program text below is whatever
the mid-end's allocator and lowerer emit.  Nothing downstream knows the
difference — the lowered :class:`~repro.isa.program.Program` runs through
``repro run`` / ``repro metrics`` exactly like the nine paper workloads.

Locality structure (what RVP sees):

* the ``a`` array is a run-length pool (:func:`repro.workloads.data.run_lengths`),
  so its load shows strong last-value reuse;
* the ``b`` array is a correlated copy of ``a`` shifted by one element, so
  ``b[i]`` frequently equals the value ``a`` loaded the previous iteration —
  dead/live-register correlation across the two load destinations;
* both pointers stride by the word size, feeding the stride shadow pass.
"""

from __future__ import annotations

import numpy as np

from ..isa.program import Program
from ..sim.memory import Memory
from .base import HEADER_BASE, SCRATCH_BASE, Workload
from . import data

_A = 0
_B = 1


class IrDotprodWorkload(Workload):
    name = "dotprod"
    category = "C"
    description = "IR-authored blocked dot product over correlated run-length arrays"

    def _build_program(self) -> Program:
        from ..ir import IRBuilder

        b = IRBuilder(self.name)
        f = b.function("main")
        f.block("main")
        hdr = f.var("hdr")
        f.li(hdr, HEADER_BASE)
        reps = f.var("reps")
        f.ld(reps, hdr, 0)
        n = f.var("n")
        f.ld(n, hdr, 8)
        a_base = f.var("a_base")
        f.li(a_base, self.array_base(_A))
        b_base = f.var("b_base")
        f.li(b_base, self.array_base(_B))
        total = f.var("total")
        f.li(total, 0)

        f.block("outer")
        pa = f.var("pa")
        f.mov(pa, a_base)
        pb = f.var("pb")
        f.mov(pb, b_base)
        i = f.var("i")
        f.li(i, 0)
        acc = f.var("acc")
        f.li(acc, 0)

        f.block("inner")
        va = f.var("va")
        f.ld(va, pa, 0)
        vb = f.var("vb")
        f.ld(vb, pb, 0)
        prod = f.var("prod")
        f.mul(prod, va, vb)
        f.add(acc, acc, prod)
        f.add(pa, pa, 8)
        f.add(pb, pb, 8)
        f.add(i, i, 1)
        more = f.var("more")
        f.cmplt(more, i, n)
        f.bne(more, "inner")

        f.block("wrap")
        f.add(total, total, acc)
        f.sub(reps, reps, 1)
        f.bne(reps, "outer")

        f.block("end")
        out = f.var("out")
        f.li(out, SCRATCH_BASE)
        f.st(total, out, 0)
        f.halt()
        return b.program()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        n = self.n(96)
        reps = self.n(12)
        self.write_header(memory, reps, n)
        pool = [int(v) for v in rng.integers(1, 50, size=8)]
        a = data.run_lengths(rng, n, pool, mean_run=4.0)
        # b trails a by one element, so b's load usually matches the value
        # a's (by then dead) destination register held last iteration.
        shifted = a[-1:] + a[:-1]
        b = data.correlated_copy(rng, shifted, correlation=0.85)
        memory.write_words(self.array_base(_A), a)
        memory.write_words(self.array_base(_B), b)
