"""Value-stream generators.

These produce the data arrays the workload programs traverse.  Each generator
targets one of the locality phenomena the paper exploits:

* :func:`run_lengths`       — values repeat in runs → last-value locality.
* :func:`sparse_values`     — mostly one constant (usually 0) → constant
  locality (the paper's sparse-matrix example, Section 3).
* :func:`zipf_pool`         — draws from a small pool with Zipf popularity →
  a few values dominate (interpreter immediates, board states).
* :func:`correlated_copy`   — second array frequently equal to the first →
  correlated-variable locality (Figure 2a).
* :func:`smooth_field`      — slowly-varying quantised field → neighbouring
  elements often equal (stencil codes: hydro2d, mgrid).
* :func:`cons_heap`         — linked list-of-lists heap with shared atoms
  (the li model).

All functions take a ``numpy.random.Generator`` so workload images are fully
deterministic per seed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def run_lengths(rng: np.random.Generator, count: int, pool: Sequence[int], mean_run: float) -> List[int]:
    """``count`` values drawn from ``pool``, repeated in geometric-length runs."""
    if mean_run < 1:
        raise ValueError("mean_run must be >= 1")
    out: List[int] = []
    p = 1.0 / mean_run
    while len(out) < count:
        value = int(pool[int(rng.integers(len(pool)))])
        run = 1 + int(rng.geometric(p)) - 1 if p < 1.0 else 1
        out.extend([value] * max(1, run))
    return out[:count]


def sparse_values(
    rng: np.random.Generator,
    count: int,
    density: float,
    value_range: Tuple[int, int] = (1, 1 << 20),
    fill: int = 0,
) -> List[int]:
    """Array that is ``fill`` except for a ``density`` fraction of random values."""
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    values = np.full(count, fill, dtype=np.int64)
    nonzero = rng.random(count) < density
    lo, hi = value_range
    values[nonzero] = rng.integers(lo, hi, size=int(nonzero.sum()))
    return [int(v) for v in values]


def zipf_pool(rng: np.random.Generator, count: int, pool_size: int, exponent: float = 1.2) -> List[int]:
    """Indices 0..pool_size-1 with Zipf-like popularity (index 0 most common)."""
    ranks = np.arange(1, pool_size + 1, dtype=np.float64)
    probs = ranks ** (-exponent)
    probs /= probs.sum()
    return [int(v) for v in rng.choice(pool_size, size=count, p=probs)]


def correlated_copy(
    rng: np.random.Generator,
    source: Sequence[int],
    correlation: float,
    value_range: Tuple[int, int] = (1, 1 << 20),
) -> List[int]:
    """A second array equal to ``source`` elementwise with probability
    ``correlation``, random otherwise (Figure 2a correlated variables)."""
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [0, 1]")
    lo, hi = value_range
    out: List[int] = []
    same = rng.random(len(source)) < correlation
    randoms = rng.integers(lo, hi, size=len(source))
    for value, keep, alt in zip(source, same, randoms):
        out.append(int(value) if keep else int(alt))
    return out


def smooth_field(
    rng: np.random.Generator,
    count: int,
    levels: int = 16,
    step_prob: float = 0.15,
    zero_frac: float = 0.0,
) -> List[int]:
    """Quantised slowly-varying field: neighbours usually hold equal values.

    A ``zero_frac`` fraction of positions is forced to zero in runs, modelling
    boundary/padding regions of stencil grids.
    """
    out: List[int] = []
    level = int(rng.integers(levels))
    for _ in range(count):
        if rng.random() < step_prob:
            level = int(np.clip(level + int(rng.integers(-1, 2)), 0, levels - 1))
        out.append(level * 1000 + 7)  # distinctive nonzero encodings
    if zero_frac > 0:
        zero_run = max(1, int(count * zero_frac / max(1, int(count * zero_frac / 8))))
        pos = 0
        while pos < count:
            if rng.random() < zero_frac:
                for i in range(pos, min(count, pos + zero_run)):
                    out[i] = 0
                pos += zero_run
            else:
                pos += zero_run
    return out


def cons_heap(
    rng: np.random.Generator,
    heap_base: int,
    n_cells: int,
    n_atoms: int,
    atom_reuse: float = 0.7,
    repeat_prob: float = 0.55,
    nest_prob: float = 0.25,
) -> Tuple[List[int], int]:
    """Build a list-of-lists cons heap.

    Returns ``(words, root_addr)``.  Each cons cell is two words (car, cdr) at
    ``heap_base + 16*i``.  Car fields hold either a pointer to a nested list or
    a *tagged atom* (odd value, so pointers — always 16-aligned — are
    distinguishable).  With probability ``atom_reuse`` an atom is drawn from a
    small shared pool, giving the heavy value sharing that makes li so
    predictable in the paper.
    """
    atom_pool = [int(a) * 2 + 1 for a in rng.integers(1, 1 << 16, size=max(1, n_atoms // 8))]
    last_atom = 0

    def fresh_atom() -> int:
        """Atoms repeat in runs (``repeat_prob``) and otherwise come mostly
        from a shared pool (``atom_reuse``) — xlisp's interned symbols."""
        nonlocal last_atom
        if last_atom and rng.random() < repeat_prob:
            return last_atom
        if rng.random() < atom_reuse:
            value = int(atom_pool[int(rng.integers(len(atom_pool)))])
        else:
            value = int(rng.integers(1, 1 << 16)) * 2 + 1
        last_atom = value
        return value

    cells: List[Tuple[int, int]] = [(0, 0)] * n_cells
    next_free = 0
    # Reserve the tail quarter of the heap for the master chain of roots.
    data_limit = max(8, (n_cells * 3) // 4)

    def alloc() -> int:
        nonlocal next_free
        index = next_free
        next_free += 1
        return index

    def addr(index: int) -> int:
        return heap_base + 16 * index

    def build_list(length: int, depth: int) -> int:
        """Build a proper list of ``length`` cells; returns its address (or 0)."""
        head = 0
        for _ in range(length):
            if next_free >= data_limit:
                break
            index = alloc()
            if depth > 0 and rng.random() < nest_prob and data_limit - next_free > 16:
                car = build_list(int(rng.integers(1, 4)), depth - 1)
            else:
                car = fresh_atom()
            cells[index] = (car, head)
            head = addr(index)
        return head

    roots: List[int] = []
    while next_free < data_limit and len(roots) < n_cells - data_limit:
        roots.append(build_list(int(rng.integers(20, 44)), depth=2))
    # Chain the roots themselves into one master list in the reserved tail.
    master = 0
    next_free = max(next_free, data_limit)
    for root in reversed(roots):
        index = alloc()
        cells[index] = (root, master)
        master = addr(index)

    words: List[int] = []
    for car, cdr in cells:
        words.extend((car, cdr))
    return words, master
