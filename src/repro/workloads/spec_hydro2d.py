"""``hydro2d`` model — in-place relaxation sweeps over a smooth field.

SPEC95 hydro2d solves hydrodynamical Navier-Stokes equations on a 2D grid.
In the paper it is one of the most RVP-friendly codes (Table 2: 22% coverage
drvp-dead, 27% with dead+lv, at ~99.9% accuracy) and one of the four programs
in the Figure 7 reallocation study.

The model runs an in-place transport update ``u[i] = u[i-1] + u[i+1] - u[i]``
over a quantised smooth field.  Within a constant run of the field the update
is value-preserving (``v + v - v == v``), and at run boundaries the boundary
simply drifts one cell per sweep — so the field stays run-structured forever.
The value-locality structure this produces:

* **A serial memory-carried chain through a predictable load.**  Each
  iteration stores ``u[i]`` and the next iteration loads it (``f2``); the
  stored value usually equals the loaded register's previous content, so
  dynamic RVP collapses the sweep's critical recurrence — the paper's core
  mechanism for its FP codes.
* **Rotating stencil loads (dead-register correlation).**  ``u[i-1]`` loaded
  into ``f1`` equals ``f2``'s previous value; the profiler's dead list
  captures it, but the live ranges genuinely overlap within an iteration, so
  the *realistic* reallocator must abandon most of these — reproducing the
  ideal-vs-realloc gap of Figure 7.
* **Clobbered chain load (Figure 2c).**  A diagnostic temporary overwrites
  ``f2`` — the chain load's register — at the end of every iteration, so the
  chain's same-register reuse is invisible to plain dynamic RVP until either
  the dead list redirects the prediction (``f2``'s value equals ``f3``'s old
  content) or the last-value reallocation gives the temporary its own
  register.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import F, R
from ..sim.memory import Memory
from .base import HEADER_BASE, Workload
from . import data

_GRID = 0
_COEFF = 2
_DIAG_OFFSET = 0x80000  # diagnostic array, relative to the grid cursor


class Hydro2dWorkload(Workload):
    name = "hydro2d"
    category = "F"
    description = "In-place transport sweeps with a memory-carried predictable chain"

    def _build_program(self) -> Program:
        b = ProgramBuilder(self.name)
        grid = self.array_base(_GRID)
        coeff = self.array_base(_COEFF)
        with b.procedure("main"):
            b.li(R[9], HEADER_BASE)
            b.ld(R[10], R[9], 0)  # sweeps
            b.ld(R[11], R[9], 8)  # interior cells per sweep
            b.li(R[15], coeff)
            b.label("sweep_loop")
            b.li(R[12], grid)
            b.li(R[14], 0)  # cell counter
            b.label("cell_loop")
            b.fld(F[1], R[12], 0)  # u[i-1]: equals f2's previous value (dead corr.)
            b.fld(F[2], R[12], 8)  # u[i]: stored last iteration -> serial chain
            b.fld(F[3], R[12], 16)  # u[i+1]: smooth-field locality only
            b.fadd(F[4], F[1], F[3])
            b.fsub(F[6], F[4], F[2])  # u' = u[i-1] + u[i+1] - u[i] (== u in runs)
            b.fst(F[6], R[12], 8)  # in-place update closes the chain
            b.fld(F[5], R[15], 0)  # damping coefficient (constant value)
            b.fmul(F[7], F[6], F[5])
            b.fst(F[7], R[12], _DIAG_OFFSET)  # damping diagnostic
            # Figure 2c: the diagnostic temporary clobbers f2 — the chain
            # load's register — hiding its reuse from same-register RVP
            # until the last-value reallocation frees it.
            b.fsub(F[2], F[7], F[6])
            b.addi(R[12], R[12], 8)
            b.addi(R[14], R[14], 1)
            b.cmplt(R[1], R[14], R[11])
            b.bne(R[1], "cell_loop")
            b.subi(R[10], R[10], 1)
            b.bne(R[10], "sweep_loop")
            b.halt()
        return b.build()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        cells = self.n(1100)
        sweeps = self.n(3)
        field = data.smooth_field(rng, cells + 2, levels=10, step_prob=0.18)
        self.write_header(memory, sweeps, cells)
        memory.write_words(self.array_base(_GRID), field)
        memory.write_words(self.array_base(_COEFF), [5])
