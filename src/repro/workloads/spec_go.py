"""``go`` model — branchy board evaluation with low value locality.

SPEC95 go is the least predictable benchmark in the paper's suite: Table 2
shows only 4% of instructions predicted (drvp-dead) and Figures 3/5/6 show
essentially no speedup from any predictor.  What makes go hard is highly
data-dependent control flow over a board whose cell values, while drawn from
a tiny alphabet {empty, black, white}, arrive in an order with little
temporal correlation.

The model scans a go board repeatedly; for every stone it examines the four
neighbours, counts liberties and friendly contacts with data-dependent
branches, and writes an evaluation score.  Cell loads use a tiny alphabet but
random placement, so same-register and last-value reuse are both modest, and
the branch predictor takes a realistic beating.
"""

from __future__ import annotations

import numpy as np

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import R
from ..sim.memory import Memory
from .base import HEADER_BASE, SCRATCH_BASE, Workload

_BOARD = 0
_ROW = 16  # cells per row
_EMPTY, _BLACK, _WHITE = 0, 1, 2


class GoWorkload(Workload):
    name = "go"
    category = "C"
    description = "Board scan with data-dependent branching and weak locality"

    def _build_program(self) -> Program:
        b = ProgramBuilder(self.name)
        board = self.array_base(_BOARD)
        with b.procedure("main"):
            b.li(R[9], HEADER_BASE)
            b.ld(R[10], R[9], 0)  # number of full-board passes
            b.ld(R[11], R[9], 8)  # number of interior cells to visit
            b.li(R[13], SCRATCH_BASE)
            b.label("pass_loop")
            # Visit interior cells (skip first and last row to avoid edges).
            b.li(R[12], _ROW)  # cell index
            b.li(R[14], 0)  # visited count
            b.label("cell_loop")
            b.sll(R[1], R[12], 3)
            b.li(R[2], board)
            b.add(R[2], R[2], R[1])
            b.ld(R[3], R[2], 0)  # centre cell
            b.beq(R[3], "empty_cell")
            # A stone: inspect the four neighbours.
            b.ld(R[4], R[2], 8)  # east
            b.ld(R[5], R[2], -8)  # west
            b.ld(R[6], R[2], 8 * _ROW)  # south
            b.ld(R[7], R[2], -8 * _ROW)  # north
            b.li(R[8], 0)  # liberty count
            b.bne(R[4], "e_occupied")
            b.addi(R[8], R[8], 1)
            b.label("e_occupied")
            b.bne(R[5], "w_occupied")
            b.addi(R[8], R[8], 1)
            b.label("w_occupied")
            b.bne(R[6], "s_occupied")
            b.addi(R[8], R[8], 1)
            b.label("s_occupied")
            b.bne(R[7], "n_occupied")
            b.addi(R[8], R[8], 1)
            b.label("n_occupied")
            # Friendly-contact bonus: east neighbour same colour as centre?
            b.cmpeq(R[1], R[4], R[3])
            b.beq(R[1], "no_friend")
            b.addi(R[8], R[8], 4)
            b.label("no_friend")
            # Atari check: zero liberties scores a capture bonus.
            b.bne(R[8], "store_eval")
            b.addi(R[8], R[8], 16)
            b.label("store_eval")
            b.st(R[8], R[13], 0)
            b.br("advance")
            b.label("empty_cell")
            b.st(R[31], R[13], 8)
            b.label("advance")
            b.addi(R[12], R[12], 1)
            b.addi(R[14], R[14], 1)
            b.cmplt(R[1], R[14], R[11])
            b.bne(R[1], "cell_loop")
            b.subi(R[10], R[10], 1)
            b.bne(R[10], "pass_loop")
            b.halt()
        return b.build()

    def _populate_memory(self, memory: Memory, rng: np.random.Generator) -> None:
        rows = 18
        cells = rows * _ROW
        passes = self.n(5)
        visits = cells - 2 * _ROW
        # Territory-structured board: long empty regions (the predictable
        # stretches real go evaluators also see) separated by contested stone
        # regions whose colours alternate with little temporal correlation.
        board = []
        while len(board) < cells:
            if rng.random() < 0.35:
                run = 1 + int(rng.geometric(1.0 / 9))
                board.extend([_EMPTY] * run)
            else:
                run = 1 + int(rng.geometric(1.0 / 3))
                for _ in range(run):
                    board.append(int(rng.choice([_EMPTY, _BLACK, _WHITE], p=[0.2, 0.41, 0.39])))
        board = board[:cells]
        self.write_header(memory, passes, visits)
        memory.write_words(self.array_base(_BOARD), board)
