"""High-level experiment API: named configurations, the shared simulation
session, parallel suite execution, metrics, and result tables."""

from .experiment import CONFIG_NAMES, ExperimentResult, ExperimentRunner
from .metrics import MetricsRegistry, get_metrics, reset_metrics
from .results import ResultTable, metrics_report, render_metrics
from .session import (
    ParallelSuiteRunner,
    SimSession,
    SuiteCell,
    SuiteReport,
    canonical_variant_key,
    get_session,
    reset_session,
)
from .sweep import render_sweep, speedup_series, sweep, sweep_machine

__all__ = [
    "CONFIG_NAMES",
    "ExperimentResult",
    "ExperimentRunner",
    "MetricsRegistry",
    "ParallelSuiteRunner",
    "ResultTable",
    "SimSession",
    "SuiteCell",
    "SuiteReport",
    "canonical_variant_key",
    "get_metrics",
    "get_session",
    "metrics_report",
    "render_metrics",
    "render_sweep",
    "reset_metrics",
    "reset_session",
    "speedup_series",
    "sweep",
    "sweep_machine",
]
