"""High-level experiment API: named configurations and result tables."""

from .experiment import CONFIG_NAMES, ExperimentResult, ExperimentRunner
from .results import ResultTable
from .sweep import render_sweep, speedup_series, sweep, sweep_machine

__all__ = [
    "CONFIG_NAMES",
    "ExperimentResult",
    "ExperimentRunner",
    "ResultTable",
    "render_sweep",
    "speedup_series",
    "sweep",
    "sweep_machine",
]
