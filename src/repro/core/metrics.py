"""Lightweight observability: process-wide counters and wall-clock timers.

Every layer of the execution core reports into one :class:`MetricsRegistry`:

* the functional simulator counts runs and committed instructions,
* the pipeline counts runs, cycles and its wall time,
* the :class:`~repro.core.session.SimSession` counts cache hits/misses per
  artifact kind (trace / profile / program variant),
* the :class:`~repro.core.session.ParallelSuiteRunner` counts cells, retries,
  timeouts and serial fallbacks.

The registry is deliberately simple — plain dict increments, one
``perf_counter`` pair per *run* (never per instruction) — so instrumentation
stays invisible in the hot loops.  ``snapshot()`` exports a structured dict
(counters, timers, derived rates such as instructions/sec and cache hit
rates) that :mod:`repro.core.results` serialises as JSON for the
``--profile`` / ``repro metrics`` CLI surface.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple


class MetricsRegistry:
    """Named counters and accumulated wall-clock timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, Tuple[float, int]] = {}  # name -> (seconds, count)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name: str, seconds: float) -> None:
        total, count = self._timers.get(name, (0.0, 0))
        self._timers[name] = (total + seconds, count + 1)

    def seconds(self, name: str) -> float:
        return self._timers.get(name, (0.0, 0))[0]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _rate(self, hits: str, misses: str) -> Optional[float]:
        total = self.get(hits) + self.get(misses)
        return self.get(hits) / total if total else None

    def snapshot(self) -> Dict[str, object]:
        """Structured export: raw counters/timers plus derived rates."""
        timers = {
            name: {"seconds": total, "count": count, "mean_seconds": total / count if count else 0.0}
            for name, (total, count) in sorted(self._timers.items())
        }
        derived: Dict[str, object] = {}
        sim_seconds = self.seconds("sim.wall")
        if sim_seconds > 0:
            derived["sim.instructions_per_sec"] = self.get("sim.instructions") / sim_seconds
        sim_runs = self.get("sim.runs")
        if sim_runs:
            # Fraction of functional runs that took the decoded no-record
            # fast path (run() with no trace requested and no observers).
            derived["sim.fast_run_fraction"] = self.get("sim.runs_fast") / sim_runs
        pipe_seconds = self.seconds("pipeline.wall")
        if pipe_seconds > 0:
            derived["pipeline.cycles_per_sec"] = self.get("pipeline.cycles") / pipe_seconds
        for kind in ("trace", "profile", "program", "lists"):
            rate = self._rate(f"session.{kind}.hits", f"session.{kind}.misses")
            if rate is not None:
                derived[f"session.{kind}.hit_rate"] = rate
        cells = self.get("pool.cells")
        if cells:
            derived["pool.parallel_fraction"] = self.get("pool.cells_parallel") / cells
        return {
            "counters": dict(sorted(self._counters.items())),
            "timers": timers,
            "derived": derived,
        }

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()


#: Process-wide default registry.  Worker processes spawned by the parallel
#: suite runner each get their own (fresh) instance.
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry every subsystem reports into."""
    return _GLOBAL


def reset_metrics() -> None:
    """Zero the process-wide registry (tests, CLI runs)."""
    _GLOBAL.reset()
