"""Result tables: the shapes the paper's figures print.

:class:`ResultTable` accumulates (workload × configuration) results and
renders the rows/series each figure reports — IPC per program (Figures 3-4)
or speedup over no-prediction per program plus the arithmetic-mean bar the
paper labels "average" (Figures 5, 6, 8), and the coverage/accuracy rows of
Table 2.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .experiment import ExperimentResult


class ResultTable:
    """(workload, config) -> ExperimentResult with figure-style rendering."""

    def __init__(self, baseline: str = "no_predict") -> None:
        self.baseline = baseline
        self._cells: Dict[str, Dict[str, ExperimentResult]] = {}
        self._workload_order: List[str] = []
        self._config_order: List[str] = []

    def add(self, result: ExperimentResult) -> None:
        row = self._cells.setdefault(result.workload, {})
        row[result.config] = result
        if result.workload not in self._workload_order:
            self._workload_order.append(result.workload)
        if result.config not in self._config_order:
            self._config_order.append(result.config)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def ipc(self, workload: str, config: str) -> float:
        return self._cells[workload][config].ipc

    def speedup(self, workload: str, config: str) -> float:
        base = self._cells[workload][self.baseline].ipc
        return self._cells[workload][config].ipc / base if base else 0.0

    def mean_speedup(self, config: str) -> float:
        """Arithmetic mean of per-program speedups (the paper's 'average')."""
        values = [self.speedup(w, config) for w in self._workload_order if config in self._cells[w]]
        return sum(values) / len(values) if values else 0.0

    def coverage(self, workload: str, config: str) -> float:
        return self._cells[workload][config].stats.coverage

    def accuracy(self, workload: str, config: str) -> float:
        return self._cells[workload][config].stats.accuracy

    @property
    def workloads(self) -> Sequence[str]:
        return tuple(self._workload_order)

    @property
    def configs(self) -> Sequence[str]:
        return tuple(self._config_order)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_ipc(self, title: str = "") -> str:
        """Figure 3/4-style: IPC per program per configuration."""
        return self._render(title, self.ipc, "{:.3f}")

    def render_speedup(self, title: str = "", include_average: bool = True) -> str:
        """Figure 5/6/8-style: speedup over the baseline, plus 'average'."""
        lines = self._render(title, self.speedup, "{:.3f}").splitlines()
        if include_average:
            cells = [f"{'average':10s}"]
            for config in self._config_order:
                cells.append(f"{self.mean_speedup(config):>{max(8, len(config))}.3f}")
            lines.append("  ".join(cells))
        return "\n".join(lines) + "\n"

    def render_coverage(self, title: str = "") -> str:
        """Table 2-style: '% predicted / accuracy' per cell."""
        header = [f"{'program':10s}"] + [f"{c:>16s}" for c in self._config_order]
        lines = [title, "  ".join(header)] if title else ["  ".join(header)]
        for workload in self._workload_order:
            cells = [f"{workload:10s}"]
            for config in self._config_order:
                result = self._cells[workload].get(config)
                if result is None:
                    cells.append(f"{'-':>16s}")
                else:
                    text = f"{100 * result.stats.coverage:.0f}/{100 * result.stats.accuracy:.1f}"
                    cells.append(f"{text:>16s}")
            lines.append("  ".join(cells))
        return "\n".join(lines) + "\n"

    def _render(self, title: str, cell, fmt: str) -> str:
        header = [f"{'program':10s}"] + [f"{c:>{max(8, len(c))}s}" for c in self._config_order]
        lines = [title, "  ".join(header)] if title else ["  ".join(header)]
        for workload in self._workload_order:
            cells = [f"{workload:10s}"]
            for config in self._config_order:
                if config in self._cells[workload]:
                    cells.append(f"{fmt.format(cell(workload, config)):>{max(8, len(config))}s}")
                else:
                    cells.append(f"{'-':>{max(8, len(config))}s}")
            lines.append("  ".join(cells))
        return "\n".join(lines) + "\n"
