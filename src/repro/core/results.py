"""Result tables: the shapes the paper's figures print.

:class:`ResultTable` accumulates (workload × configuration) results and
renders the rows/series each figure reports — IPC per program (Figures 3-4)
or speedup over no-prediction per program plus the arithmetic-mean bar the
paper labels "average" (Figures 5, 6, 8), and the coverage/accuracy rows of
Table 2.

This module is also the structured-export point: :meth:`ResultTable.to_dict`
serialises every cell, and :func:`metrics_report` / :func:`render_metrics`
expose the process-wide :mod:`~repro.core.metrics` registry (cache hit
rates, sim wall time, instructions/sec, pool utilization) as JSON for the
``--profile`` flag and the ``repro metrics`` command.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from .experiment import ExperimentResult
from .metrics import MetricsRegistry, get_metrics


def metrics_report(registry: Optional[MetricsRegistry] = None) -> Dict[str, object]:
    """Structured snapshot of the (process-wide) metrics registry."""
    return (registry if registry is not None else get_metrics()).snapshot()


def render_metrics(registry: Optional[MetricsRegistry] = None) -> str:
    """The metrics snapshot as pretty-printed JSON."""
    return json.dumps(metrics_report(registry), indent=2, sort_keys=True)


class ResultTable:
    """(workload, config) -> ExperimentResult with figure-style rendering."""

    def __init__(self, baseline: str = "no_predict") -> None:
        self.baseline = baseline
        self._cells: Dict[str, Dict[str, ExperimentResult]] = {}
        self._workload_order: List[str] = []
        self._config_order: List[str] = []
        #: (workload, config) -> campaign status (``ok``/``failed``/``timeout``/...).
        self._statuses: Dict[tuple, str] = {}
        #: (workload, config) -> diagnostic for failed cells (the footer).
        self._failures: Dict[tuple, str] = {}

    def _register(self, workload: str, config: str) -> None:
        if workload not in self._workload_order:
            self._workload_order.append(workload)
        if config not in self._config_order:
            self._config_order.append(config)

    def add(self, result: ExperimentResult) -> None:
        row = self._cells.setdefault(result.workload, {})
        row[result.config] = result
        self._register(result.workload, result.config)
        self._statuses[(result.workload, result.config)] = "ok"

    def mark_failed(self, workload: str, config: str, status: str = "failed", message: str = "") -> None:
        """Record a cell that produced no result; it renders as ``—`` and
        appears in the failure footer, keeping the table shape intact."""
        self._register(workload, config)
        self._statuses[(workload, config)] = status
        if message:
            self._failures[(workload, config)] = message

    def status(self, workload: str, config: str) -> Optional[str]:
        return self._statuses.get((workload, config))

    @property
    def has_failures(self) -> bool:
        return any(status != "ok" for status in self._statuses.values())

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def ipc(self, workload: str, config: str) -> float:
        return self._cells[workload][config].ipc

    def speedup(self, workload: str, config: str) -> float:
        base = self._cells[workload][self.baseline].ipc
        return self._cells[workload][config].ipc / base if base else 0.0

    def mean_speedup(self, config: str) -> float:
        """Arithmetic mean of per-program speedups (the paper's 'average').

        Workloads whose cell (or baseline cell) is missing — e.g. failed in
        a partial campaign — are excluded from the mean rather than crashing
        it, matching the ``—`` the table renders for them.
        """
        values = [
            self.speedup(w, config)
            for w in self._workload_order
            if config in self._cells.get(w, {}) and self.baseline in self._cells.get(w, {})
        ]
        return sum(values) / len(values) if values else 0.0

    def coverage(self, workload: str, config: str) -> float:
        return self._cells[workload][config].stats.coverage

    def accuracy(self, workload: str, config: str) -> float:
        return self._cells[workload][config].stats.accuracy

    @property
    def workloads(self) -> Sequence[str]:
        return tuple(self._workload_order)

    @property
    def configs(self) -> Sequence[str]:
        return tuple(self._config_order)

    # ------------------------------------------------------------------
    # Structured export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Every cell as plain data: IPC, speedup, coverage/accuracy, stats."""
        cells: List[Dict[str, object]] = []
        for workload in self._workload_order:
            for config in self._config_order:
                result = self._cells.get(workload, {}).get(config)
                if result is None:
                    continue
                cell: Dict[str, object] = {
                    "workload": workload,
                    "config": config,
                    "recovery": result.recovery,
                    "ipc": result.ipc,
                    "coverage": result.stats.coverage,
                    "accuracy": result.stats.accuracy,
                    "stats": result.stats.summary(),
                }
                if self.baseline in self._cells.get(workload, {}):
                    cell["speedup"] = self.speedup(workload, config)
                cells.append(cell)
        payload: Dict[str, object] = {
            "baseline": self.baseline,
            "workloads": list(self._workload_order),
            "configs": list(self._config_order),
            "cells": cells,
        }
        if self._statuses:
            payload["statuses"] = [
                {"workload": w, "config": c, "status": status}
                for (w, c), status in sorted(self._statuses.items())
            ]
        if self._failures:
            payload["failures"] = [
                {"workload": w, "config": c, "error": message}
                for (w, c), message in sorted(self._failures.items())
            ]
        return payload

    def render_json(self, include_metrics: bool = False) -> str:
        payload = self.to_dict()
        if include_metrics:
            payload["metrics"] = metrics_report()
        return json.dumps(payload, indent=2, sort_keys=True)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_ipc(self, title: str = "") -> str:
        """Figure 3/4-style: IPC per program per configuration."""
        return self._render(title, self.ipc, "{:.3f}")

    def render_speedup(self, title: str = "", include_average: bool = True) -> str:
        """Figure 5/6/8-style: speedup over the baseline, plus 'average'."""
        lines = self._render(title, self.speedup, "{:.3f}").splitlines()
        if include_average:
            cells = [f"{'average':10s}"]
            for config in self._config_order:
                cells.append(f"{self.mean_speedup(config):>{max(8, len(config))}.3f}")
            lines.append("  ".join(cells))
        return "\n".join(lines) + "\n"

    def render_coverage(self, title: str = "") -> str:
        """Table 2-style: '% predicted / accuracy' per cell."""
        header = [f"{'program':10s}"] + [f"{c:>16s}" for c in self._config_order]
        lines = [title, "  ".join(header)] if title else ["  ".join(header)]
        for workload in self._workload_order:
            cells = [f"{workload:10s}"]
            for config in self._config_order:
                result = self._cells.get(workload, {}).get(config)
                if result is None:
                    status = self._statuses.get((workload, config))
                    cells.append(f"{'—' if status not in (None, 'ok') else '-':>16s}")
                else:
                    text = f"{100 * result.stats.coverage:.0f}/{100 * result.stats.accuracy:.1f}"
                    cells.append(f"{text:>16s}")
            lines.append("  ".join(cells))
        return "\n".join(lines) + "\n"

    def render_failures(self, title: str = "failures") -> str:
        """Footer summarising failed cells (empty string when none failed)."""
        failed = [(w, c, s) for (w, c), s in sorted(self._statuses.items()) if s != "ok"]
        if not failed:
            return ""
        lines = [f"{title}: {len(failed)} cell(s) did not complete"]
        for workload, config, status in failed:
            message = self._failures.get((workload, config), "")
            suffix = f": {message}" if message else ""
            lines.append(f"  {status.upper():8s} {workload}/{config}{suffix}")
        return "\n".join(lines) + "\n"

    def _render(self, title: str, cell, fmt: str) -> str:
        header = [f"{'program':10s}"] + [f"{c:>{max(8, len(c))}s}" for c in self._config_order]
        lines = [title, "  ".join(header)] if title else ["  ".join(header)]
        for workload in self._workload_order:
            cells = [f"{workload:10s}"]
            for config in self._config_order:
                width = max(8, len(config))
                status = self._statuses.get((workload, config))
                if config in self._cells.get(workload, {}):
                    try:
                        cells.append(f"{fmt.format(cell(workload, config)):>{width}s}")
                    except KeyError:
                        # Value depends on a missing cell (e.g. speedup with
                        # a failed baseline) — degrade that cell, not the row.
                        cells.append(f"{'—':>{width}s}")
                elif status is not None and status != "ok":
                    cells.append(f"{'—':>{width}s}")
                else:
                    cells.append(f"{'-':>{width}s}")
            lines.append("  ".join(cells))
        return "\n".join(lines) + "\n"
