"""Process-wide simulation session: compute each expensive artifact once.

The architectural trace of a (workload, program variant, input) triple is a
pure function of the program text and the input seed — it does not depend on
the machine configuration, the predictor, or the recovery scheme.  The seed
repo nevertheless re-ran the functional simulator (and re-profiled) for every
:class:`~repro.core.experiment.ExperimentRunner` instance, so a three-point
machine sweep paid the functional-sim cost three times per workload.

:class:`SimSession` is the fix: one process-wide memo of

* **workloads** — ``(name, scale)`` → the :class:`Workload` instance,
* **train artifacts** — ``(name, scale, max_instructions)`` → the reuse
  profile *and* critical-path profile, built from a single streamed
  functional pass (the trace is never materialized),
* **profile lists** — train artifacts × ``(threshold, loads_only)``,
* **program variants** — canonical ``(variant, threshold)`` keys (see
  :func:`canonical_variant_key`) → transformed :class:`Program` plus, for
  ``realloc``, its :class:`ReallocReport`,
* **ref traces** — program variant × input → an immutable record tuple,
  kept in a small LRU (traces dominate resident memory; capacity via
  ``REPRO_SESSION_TRACE_CAP``, default 32).

Cache-keying rules
------------------

Keys are value keys (names and numbers), never object identities, so any two
runners that describe the same experiment share artifacts.  A ``base``
variant never includes the profile threshold in its key — the base program
and its traces are threshold-independent — while ``srvp_*`` and ``realloc``
variants always include the *effective* threshold (an explicit ``None``
resolves to the caller's default).  This single canonicalization point fixes
the seed's asymmetry where ``ExperimentRunner.run`` keyed a trace as
``"srvp_dead"`` but the same program variant as ``"srvp_dead@0.8"``.
Entries are invalidated only by LRU pressure on the trace cache or an
explicit :meth:`SimSession.reset` — workload programs and inputs are
deterministic in ``(name, scale)``, so staleness is impossible.

:class:`ParallelSuiteRunner` fans (workload × config × recovery) cells out
over a ``ProcessPoolExecutor``.  Worker processes keep their own module-level
session, so consecutive cells for the same workload inside one worker reuse
its traces.  Each cell has a wall-clock timeout and is retried once
(serially, in the parent) on failure; any pool-level failure degrades the
remaining cells to serial execution instead of aborting the suite.
"""

from __future__ import annotations

import os
from collections import Counter, OrderedDict
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout, process
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.marking import mark_static_rvp
from ..compiler.realloc import ReallocReport, reallocate
from ..isa.program import Program
from ..profiling.critpath import CriticalPathBuilder
from ..profiling.lists import ProfileLists
from ..profiling.reuse import ReuseProfile, ReuseProfileBuilder
from ..sim.functional import FunctionalSimulator
from ..sim.trace import TraceRecord
from ..uarch.config import MachineConfig
from ..uarch.recovery import RecoveryScheme
from ..workloads.base import Workload
from ..workloads.suite import make_workload
from .metrics import get_metrics

#: Default LRU capacity for cached ref traces (the dominant memory cost).
DEFAULT_TRACE_CAP = int(os.environ.get("REPRO_SESSION_TRACE_CAP", "32"))

#: Program variants whose construction does not depend on profile lists.
_THRESHOLD_FREE_VARIANTS = ("base",)


def canonical_variant_key(
    variant: str, threshold: Optional[float], default_threshold: float
) -> Tuple[str, Optional[float]]:
    """One canonical ``(variant, effective threshold)`` key for all caches.

    ``base`` ignores the threshold entirely (the base program is not derived
    from a profile); every other variant resolves ``None`` to the caller's
    default so that explicit-default and implicit-default requests collide.
    """
    if variant in _THRESHOLD_FREE_VARIANTS:
        return (variant, None)
    return (variant, default_threshold if threshold is None else threshold)


@dataclass
class TrainArtifacts:
    """Everything one streamed train-input pass produces."""

    profile: ReuseProfile
    critical: Counter
    instructions: int


class SimSession:
    """Memoized functional-simulation artifacts, shared process-wide."""

    def __init__(self, trace_capacity: int = DEFAULT_TRACE_CAP) -> None:
        if trace_capacity <= 0:
            raise ValueError("trace_capacity must be positive")
        self.trace_capacity = trace_capacity
        self._workloads: Dict[Tuple[str, float], Workload] = {}
        self._train: Dict[Tuple[str, float, int], TrainArtifacts] = {}
        self._lists: Dict[Tuple[str, float, int, float, bool], ProfileLists] = {}
        self._programs: Dict[Tuple, Program] = {}
        self._realloc: Dict[Tuple, ReallocReport] = {}
        self._traces: "OrderedDict[Tuple, Tuple[TraceRecord, ...]]" = OrderedDict()

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------
    def workload(self, name: str, scale: float = 1.0) -> Workload:
        key = (name, scale)
        instance = self._workloads.get(key)
        if instance is None:
            instance = self._workloads[key] = make_workload(name, scale=scale)
        return instance

    # ------------------------------------------------------------------
    # Train-input profiling (single streamed pass)
    # ------------------------------------------------------------------
    def train_artifacts(self, name: str, scale: float, max_instructions: int) -> TrainArtifacts:
        key = (name, scale, max_instructions)
        metrics = get_metrics()
        artifacts = self._train.get(key)
        if artifacts is not None:
            metrics.inc("session.profile.hits")
            return artifacts
        metrics.inc("session.profile.misses")
        workload = self.workload(name, scale)
        program, memory = workload.build("train")
        reuse = ReuseProfileBuilder()
        critical = CriticalPathBuilder()
        sim = FunctionalSimulator(program, memory=memory)
        with metrics.timer("sim.wall"):
            for record in sim.iter_run(max_instructions=max_instructions):
                reuse.feed(record)
                critical.feed(record)
        artifacts = TrainArtifacts(
            profile=reuse.finish(),
            critical=critical.finish(),
            instructions=sim.last_result.instructions,
        )
        self._train[key] = artifacts
        return artifacts

    def profile_lists(
        self,
        name: str,
        scale: float,
        max_instructions: int,
        threshold: float,
        loads_only: bool,
    ) -> ProfileLists:
        key = (name, scale, max_instructions, threshold, loads_only)
        metrics = get_metrics()
        lists = self._lists.get(key)
        if lists is not None:
            metrics.inc("session.lists.hits")
            return lists
        metrics.inc("session.lists.misses")
        profile = self.train_artifacts(name, scale, max_instructions).profile
        lists = self._lists[key] = profile.profile_lists(threshold, loads_only=loads_only)
        return lists

    # ------------------------------------------------------------------
    # Program variants
    # ------------------------------------------------------------------
    def program_variant(
        self,
        name: str,
        scale: float,
        max_instructions: int,
        variant: str,
        threshold: Optional[float],
        default_threshold: float,
    ) -> Program:
        """'base', 'srvp_<level>' (marked) or 'realloc' (transformed)."""
        variant, eff_threshold = canonical_variant_key(variant, threshold, default_threshold)
        key = (name, scale, max_instructions, variant, eff_threshold)
        metrics = get_metrics()
        program = self._programs.get(key)
        if program is not None:
            metrics.inc("session.program.hits")
            return program
        metrics.inc("session.program.misses")
        # Each variant is verified exactly once, here at cache-fill, so an
        # illegal program is rejected before it can poison the shared caches.
        # ``realloc`` verifies inside the pass (it alone holds the RVP007/008
        # interference context); the other variants are checked directly.
        from ..analysis.verifier import check_program, verification_enabled

        verify = verification_enabled()
        base = self.workload(name, scale).program
        if variant == "base":
            program = base
            if verify:
                check_program(program, source=f"workload {name!r} base program")
        elif variant.startswith("srvp_"):
            level = variant[len("srvp_") :]
            lists = self.profile_lists(name, scale, max_instructions, eff_threshold, loads_only=True)
            program = mark_static_rvp(base, lists, level, verify=False)
            if verify:
                check_program(
                    program, source=f"workload {name!r} variant {variant!r}",
                    lists=lists, baseline=base,
                )
        elif variant == "realloc":
            artifacts = self.train_artifacts(name, scale, max_instructions)
            lists = self.profile_lists(name, scale, max_instructions, eff_threshold, loads_only=False)
            program, report = reallocate(base, lists, artifacts.critical)
            self._realloc[key] = report
        else:
            raise ValueError(f"unknown program variant {variant!r}")
        self._programs[key] = program
        return program

    def realloc_report(
        self,
        name: str,
        scale: float,
        max_instructions: int,
        threshold: Optional[float],
        default_threshold: float,
    ) -> Optional[ReallocReport]:
        _, eff_threshold = canonical_variant_key("realloc", threshold, default_threshold)
        return self._realloc.get((name, scale, max_instructions, "realloc", eff_threshold))

    # ------------------------------------------------------------------
    # Ref traces (LRU-bounded)
    # ------------------------------------------------------------------
    def ref_trace(
        self,
        name: str,
        scale: float,
        max_instructions: int,
        variant: str = "base",
        threshold: Optional[float] = None,
        default_threshold: float = 0.8,
        input_name: str = "ref",
    ) -> Tuple[TraceRecord, ...]:
        """The committed trace of one program variant on one input.

        Returns an immutable tuple shared by every caller; repeated requests
        for the same canonical key are cache hits and run no simulation.
        """
        variant, eff_threshold = canonical_variant_key(variant, threshold, default_threshold)
        key = (name, scale, max_instructions, variant, eff_threshold, input_name)
        metrics = get_metrics()
        trace = self._traces.get(key)
        if trace is not None:
            self._traces.move_to_end(key)
            metrics.inc("session.trace.hits")
            return trace
        metrics.inc("session.trace.misses")
        program = self.program_variant(name, scale, max_instructions, variant, eff_threshold, default_threshold)
        memory = self.workload(name, scale).memory(input_name)
        sim = FunctionalSimulator(program, memory=memory)
        with metrics.timer("sim.wall"):
            # run(collect_trace=True) takes the eager decoded path (no
            # generator suspension per record) when no observers are attached.
            trace = tuple(sim.run(max_instructions=max_instructions, collect_trace=True).trace)
        self._traces[key] = trace
        while len(self._traces) > self.trace_capacity:
            self._traces.popitem(last=False)
            metrics.inc("session.trace.evictions")
        return trace

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Resident entry counts per cache, for the bench/metrics surfaces."""
        return {
            "workloads": len(self._workloads),
            "train_artifacts": len(self._train),
            "profile_lists": len(self._lists),
            "programs": len(self._programs),
            "realloc_reports": len(self._realloc),
            "traces": len(self._traces),
        }

    def reset(self) -> None:
        """Drop every cached artifact (tests, long-lived processes)."""
        self._workloads.clear()
        self._train.clear()
        self._lists.clear()
        self._programs.clear()
        self._realloc.clear()
        self._traces.clear()


#: The process-wide session every ExperimentRunner shares by default.
_GLOBAL = SimSession()


def get_session() -> SimSession:
    """The process-wide :class:`SimSession`."""
    return _GLOBAL


def reset_session() -> None:
    """Clear the process-wide session (tests, memory pressure)."""
    _GLOBAL.reset()


# ======================================================================
# Parallel suite execution
# ======================================================================
@dataclass(frozen=True)
class SuiteCell:
    """One (workload, config, recovery) unit of suite work."""

    workload: str
    config: str
    recovery: str


@dataclass
class SuiteReport:
    """Outcome of a :class:`ParallelSuiteRunner` run."""

    results: List = field(default_factory=list)  # List[ExperimentResult]
    failures: Dict[SuiteCell, str] = field(default_factory=dict)
    used_processes: bool = False


def _run_cell(
    cell: SuiteCell,
    machine: Optional[MachineConfig],
    max_instructions: int,
    threshold: float,
    scale: float,
):
    """Top-level worker (picklable): run one cell in this process's session."""
    from .experiment import ExperimentRunner

    runner = ExperimentRunner(
        cell.workload,
        scale=scale,
        machine=machine,
        max_instructions=max_instructions,
        threshold=threshold,
    )
    return runner.run(cell.config, recovery=RecoveryScheme.parse(cell.recovery))


class ParallelSuiteRunner:
    """Fan (workload × config × recovery) cells out over worker processes.

    Worker processes inherit nothing from the parent's session; each keeps
    its own, so cells for the same workload that land on the same worker
    share traces.  Failed or timed-out cells are retried once serially in
    the parent; a broken pool degrades the rest of the run to serial.
    """

    #: Executor factory, ``callable(max_workers=n) -> context manager`` with
    #: ``submit``.  Overridable per instance — the deterministic fault
    #: injector (:mod:`repro.testing.faults`) swaps in an executor that
    #: forces timeouts, poisoned results and pool failures so the retry and
    #: serial-fallback paths below are exercised on purpose.
    executor_factory = ProcessPoolExecutor

    def __init__(
        self,
        workloads: Sequence[str],
        configs: Sequence[str],
        recoveries: Sequence[RecoveryScheme] = (RecoveryScheme.SELECTIVE,),
        machine: Optional[MachineConfig] = None,
        max_instructions: int = 40_000,
        threshold: float = 0.8,
        scale: float = 1.0,
        jobs: Optional[int] = None,
        cell_timeout: float = 600.0,
    ) -> None:
        self.cells = [
            SuiteCell(workload, config, recovery.value)
            for workload in workloads
            for config in configs
            for recovery in recoveries
        ]
        self.machine = machine
        self.max_instructions = max_instructions
        self.threshold = threshold
        self.scale = scale
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cell_timeout = cell_timeout

    # ------------------------------------------------------------------
    def run(self) -> SuiteReport:
        metrics = get_metrics()
        metrics.inc("pool.cells", len(self.cells))
        report = SuiteReport()
        if self.jobs <= 1 or len(self.cells) <= 1:
            self._run_serial(self.cells, report)
            return report
        try:
            self._run_parallel(report)
            report.used_processes = True
        except (process.BrokenProcessPool, OSError, RuntimeError) as exc:
            # Pool-level failure (sandboxed fork, dead workers, ...): finish
            # whatever is left serially rather than losing the suite.
            metrics.inc("pool.serial_fallbacks")
            done = {(r.workload, r.config, r.recovery) for r in report.results}
            remaining = [
                cell
                for cell in self.cells
                if (cell.workload, cell.config, cell.recovery) not in done and cell not in report.failures
            ]
            self._run_serial(remaining, report, note=f"pool failure: {exc}")
        return report

    # ------------------------------------------------------------------
    def _run_serial(self, cells: Sequence[SuiteCell], report: SuiteReport, note: str = "") -> None:
        metrics = get_metrics()
        for cell in cells:
            try:
                report.results.append(self._run_local(cell))
                metrics.inc("pool.cells_serial")
            except Exception as exc:  # pragma: no cover - defensive
                report.failures[cell] = f"{note + ': ' if note else ''}{exc!r}"

    def _run_local(self, cell: SuiteCell):
        return _run_cell(cell, self.machine, self.max_instructions, self.threshold, self.scale)

    def _run_parallel(self, report: SuiteReport) -> None:
        metrics = get_metrics()
        workers = max(1, min(self.jobs, len(self.cells)))
        metrics.inc("pool.workers", workers)
        with self.executor_factory(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _run_cell, cell, self.machine, self.max_instructions, self.threshold, self.scale
                ): cell
                for cell in self.cells
            }
            with metrics.timer("pool.wall"):
                for future, cell in futures.items():
                    try:
                        report.results.append(future.result(timeout=self.cell_timeout))
                        metrics.inc("pool.cells_parallel")
                    except process.BrokenProcessPool:
                        raise
                    except Exception as exc:
                        if isinstance(exc, (FutureTimeout, TimeoutError)):
                            metrics.inc("pool.timeouts")
                            future.cancel()
                        self._retry_cell(cell, exc, report)

    def _retry_cell(self, cell: SuiteCell, first_error: Exception, report: SuiteReport) -> None:
        """Retry a failed cell once, serially in the parent process."""
        metrics = get_metrics()
        metrics.inc("pool.retries")
        try:
            report.results.append(self._run_local(cell))
        except Exception as exc:
            report.failures[cell] = f"first: {first_error!r}; retry: {exc!r}"
