"""Process-wide simulation session: compute each expensive artifact once.

The architectural trace of a (workload, program variant, input) triple is a
pure function of the program text and the input seed — it does not depend on
the machine configuration, the predictor, or the recovery scheme.  The seed
repo nevertheless re-ran the functional simulator (and re-profiled) for every
:class:`~repro.core.experiment.ExperimentRunner` instance, so a three-point
machine sweep paid the functional-sim cost three times per workload.

:class:`SimSession` is the fix: one process-wide memo of

* **workloads** — ``(name, scale)`` → the :class:`Workload` instance,
* **train artifacts** — ``(name, scale, max_instructions)`` → the reuse
  profile *and* critical-path profile, built from a single streamed
  functional pass (the trace is never materialized),
* **profile lists** — train artifacts × ``(threshold, loads_only)``,
* **program variants** — canonical ``(variant, threshold)`` keys (see
  :func:`canonical_variant_key`) → transformed :class:`Program` plus, for
  ``realloc``, its :class:`ReallocReport`,
* **ref traces** — program variant × input → an immutable record tuple,
  kept in a small LRU (traces dominate resident memory; capacity via
  ``REPRO_SESSION_TRACE_CAP``, default 32).

Cache-keying rules
------------------

Keys are value keys (names and numbers), never object identities, so any two
runners that describe the same experiment share artifacts.  A ``base``
variant never includes the profile threshold in its key — the base program
and its traces are threshold-independent — while ``srvp_*`` and ``realloc``
variants always include the *effective* threshold (an explicit ``None``
resolves to the caller's default).  This single canonicalization point fixes
the seed's asymmetry where ``ExperimentRunner.run`` keyed a trace as
``"srvp_dead"`` but the same program variant as ``"srvp_dead@0.8"``.
Entries are invalidated only by LRU pressure on the trace cache or an
explicit :meth:`SimSession.reset` — workload programs and inputs are
deterministic in ``(name, scale)``, so staleness is impossible.

:class:`ParallelSuiteRunner` fans (workload × config × recovery) cells out
over a ``ProcessPoolExecutor``.  Worker processes keep their own module-level
session, so consecutive cells for the same workload inside one worker reuse
its traces.  Each cell has a wall-clock deadline derived from its
instruction budget; failures are routed through the campaign taxonomy
(:mod:`repro.runtime.errors`) — transient ones retried with backoff,
deterministic ones failed fast — and any pool-level failure degrades the
remaining cells to serial execution instead of aborting the suite.  With a
run journal attached, every terminal cell state is committed durably, which
is what ``repro run --resume`` replays.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import Counter, OrderedDict
from concurrent.futures import ProcessPoolExecutor, process
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.marking import mark_static_rvp
from ..compiler.realloc import ReallocReport, reallocate
from ..isa.program import Program
from ..profiling.critpath import CriticalPathBuilder
from ..profiling.lists import ProfileLists
from ..profiling.reuse import ReuseProfile, ReuseProfileBuilder
from ..runtime.errors import DETERMINISTIC, classify_failure, is_timeout
from ..runtime.retry import backoff_delays
from ..sim.functional import FunctionalSimulator
from ..sim.trace import TraceRecord
from ..uarch.config import MachineConfig
from ..uarch.recovery import RecoveryScheme
from ..uarch.stream import StreamEntry, prepare_stream
from ..vp.base import ValuePredictor
from ..workloads.base import Workload
from ..workloads.suite import make_workload
from .metrics import get_metrics

#: Default LRU capacity for cached ref traces (the dominant memory cost).
DEFAULT_TRACE_CAP = int(os.environ.get("REPRO_SESSION_TRACE_CAP", "32"))

#: Default resident-size budget for the trace LRU, in bytes.  Entry-count
#: caps alone under-protect long-budget runs (a 1M-instruction trace is three
#: orders of magnitude heavier than a 1.5k one), so eviction also fires on
#: estimated bytes.
DEFAULT_TRACE_BYTES = int(os.environ.get("REPRO_SESSION_TRACE_BYTES", str(256 * 1024 * 1024)))

#: Estimated resident cost of one cached :class:`TraceRecord` (slots, ints,
#: tuple overhead) — an accounting constant, not a measurement.
TRACE_RECORD_BYTES = 400

#: Estimated resident cost of one cached :class:`StreamEntry` *beyond* its
#: TraceRecord (which the trace cache already accounts for — stream entries
#: alias trace records, they do not copy them).
STREAM_ENTRY_BYTES = 320

#: Program variants whose construction does not depend on profile lists.
_THRESHOLD_FREE_VARIANTS = ("base",)


def canonical_variant_key(
    variant: str, threshold: Optional[float], default_threshold: float
) -> Tuple[str, Optional[float]]:
    """One canonical ``(variant, effective threshold)`` key for all caches.

    ``base`` ignores the threshold entirely (the base program is not derived
    from a profile); every other variant resolves ``None`` to the caller's
    default so that explicit-default and implicit-default requests collide.
    """
    if variant in _THRESHOLD_FREE_VARIANTS:
        return (variant, None)
    return (variant, default_threshold if threshold is None else threshold)


@dataclass
class TrainArtifacts:
    """Everything one streamed train-input pass produces."""

    profile: ReuseProfile
    critical: Counter
    instructions: int


class SimSession:
    """Memoized functional-simulation artifacts, shared process-wide."""

    def __init__(
        self,
        trace_capacity: int = DEFAULT_TRACE_CAP,
        trace_bytes: int = DEFAULT_TRACE_BYTES,
    ) -> None:
        if trace_capacity <= 0:
            raise ValueError("trace_capacity must be positive")
        if trace_bytes <= 0:
            raise ValueError("trace_bytes must be positive")
        self.trace_capacity = trace_capacity
        self.trace_bytes = trace_bytes
        self._workloads: Dict[Tuple[str, float], Workload] = {}
        self._train: Dict[Tuple[str, float, int], TrainArtifacts] = {}
        self._lists: Dict[Tuple[str, float, int, float, bool], ProfileLists] = {}
        self._programs: Dict[Tuple, Program] = {}
        self._realloc: Dict[Tuple, ReallocReport] = {}
        self._traces: "OrderedDict[Tuple, Tuple[TraceRecord, ...]]" = OrderedDict()
        self._trace_resident_bytes = 0
        self._streams: "OrderedDict[Tuple, List[StreamEntry]]" = OrderedDict()
        self._stream_resident_bytes = 0
        self._batches: Dict[Tuple, Dict[str, Dict[str, object]]] = {}

    @staticmethod
    def _trace_cost(trace: Tuple[TraceRecord, ...]) -> int:
        """Estimated resident bytes of one cached trace tuple."""
        return 128 + TRACE_RECORD_BYTES * len(trace)

    @staticmethod
    def _stream_cost(stream: List[StreamEntry]) -> int:
        """Estimated resident bytes of one cached pipeline stream."""
        return 128 + STREAM_ENTRY_BYTES * len(stream)

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------
    def workload(self, name: str, scale: float = 1.0) -> Workload:
        key = (name, scale)
        instance = self._workloads.get(key)
        if instance is None:
            instance = self._workloads[key] = make_workload(name, scale=scale)
        return instance

    # ------------------------------------------------------------------
    # Train-input profiling (single streamed pass)
    # ------------------------------------------------------------------
    def train_artifacts(self, name: str, scale: float, max_instructions: int) -> TrainArtifacts:
        key = (name, scale, max_instructions)
        metrics = get_metrics()
        artifacts = self._train.get(key)
        if artifacts is not None:
            metrics.inc("session.profile.hits")
            return artifacts
        metrics.inc("session.profile.misses")
        workload = self.workload(name, scale)
        program, memory = workload.build("train")
        reuse = ReuseProfileBuilder()
        critical = CriticalPathBuilder()
        sim = FunctionalSimulator(program, memory=memory)
        with metrics.timer("sim.wall"):
            for record in sim.iter_run(max_instructions=max_instructions):
                reuse.feed(record)
                critical.feed(record)
        artifacts = TrainArtifacts(
            profile=reuse.finish(),
            critical=critical.finish(),
            instructions=sim.last_result.instructions,
        )
        self._train[key] = artifacts
        return artifacts

    def profile_lists(
        self,
        name: str,
        scale: float,
        max_instructions: int,
        threshold: float,
        loads_only: bool,
    ) -> ProfileLists:
        key = (name, scale, max_instructions, threshold, loads_only)
        metrics = get_metrics()
        lists = self._lists.get(key)
        if lists is not None:
            metrics.inc("session.lists.hits")
            return lists
        metrics.inc("session.lists.misses")
        profile = self.train_artifacts(name, scale, max_instructions).profile
        lists = self._lists[key] = profile.profile_lists(threshold, loads_only=loads_only)
        return lists

    # ------------------------------------------------------------------
    # Program variants
    # ------------------------------------------------------------------
    def program_variant(
        self,
        name: str,
        scale: float,
        max_instructions: int,
        variant: str,
        threshold: Optional[float],
        default_threshold: float,
    ) -> Program:
        """'base', 'srvp_<level>' (marked) or 'realloc' (transformed)."""
        variant, eff_threshold = canonical_variant_key(variant, threshold, default_threshold)
        key = (name, scale, max_instructions, variant, eff_threshold)
        metrics = get_metrics()
        program = self._programs.get(key)
        if program is not None:
            metrics.inc("session.program.hits")
            return program
        metrics.inc("session.program.misses")
        # Each variant is verified exactly once, here at cache-fill, so an
        # illegal program is rejected before it can poison the shared caches.
        # ``realloc`` verifies inside the pass (it alone holds the RVP007/008
        # interference context); the other variants are checked directly.
        from ..analysis.verifier import check_program, verification_enabled

        verify = verification_enabled()
        base = self.workload(name, scale).program
        if variant == "base":
            program = base
            if verify:
                check_program(program, source=f"workload {name!r} base program")
        elif variant.startswith("srvp_"):
            level = variant[len("srvp_") :]
            lists = self.profile_lists(name, scale, max_instructions, eff_threshold, loads_only=True)
            program = mark_static_rvp(base, lists, level, verify=False)
            if verify:
                check_program(
                    program, source=f"workload {name!r} variant {variant!r}",
                    lists=lists, baseline=base,
                )
        elif variant == "realloc":
            artifacts = self.train_artifacts(name, scale, max_instructions)
            lists = self.profile_lists(name, scale, max_instructions, eff_threshold, loads_only=False)
            program, report = reallocate(base, lists, artifacts.critical)
            self._realloc[key] = report
        else:
            raise ValueError(f"unknown program variant {variant!r}")
        self._programs[key] = program
        return program

    def realloc_report(
        self,
        name: str,
        scale: float,
        max_instructions: int,
        threshold: Optional[float],
        default_threshold: float,
    ) -> Optional[ReallocReport]:
        _, eff_threshold = canonical_variant_key("realloc", threshold, default_threshold)
        return self._realloc.get((name, scale, max_instructions, "realloc", eff_threshold))

    # ------------------------------------------------------------------
    # Ref traces (LRU-bounded)
    # ------------------------------------------------------------------
    def ref_trace(
        self,
        name: str,
        scale: float,
        max_instructions: int,
        variant: str = "base",
        threshold: Optional[float] = None,
        default_threshold: float = 0.8,
        input_name: str = "ref",
    ) -> Tuple[TraceRecord, ...]:
        """The committed trace of one program variant on one input.

        Returns an immutable tuple shared by every caller; repeated requests
        for the same canonical key are cache hits and run no simulation.
        """
        variant, eff_threshold = canonical_variant_key(variant, threshold, default_threshold)
        key = (name, scale, max_instructions, variant, eff_threshold, input_name)
        metrics = get_metrics()
        trace = self._traces.get(key)
        if trace is not None:
            self._traces.move_to_end(key)
            metrics.inc("session.trace.hits")
            return trace
        metrics.inc("session.trace.misses")
        program = self.program_variant(name, scale, max_instructions, variant, eff_threshold, default_threshold)
        memory = self.workload(name, scale).memory(input_name)
        sim = FunctionalSimulator(program, memory=memory)
        with metrics.timer("sim.wall"):
            # run(collect_trace=True) takes the eager decoded path (no
            # generator suspension per record) when no observers are attached.
            trace = tuple(sim.run(max_instructions=max_instructions, collect_trace=True).trace)
        self._traces[key] = trace
        self._trace_resident_bytes += self._trace_cost(trace)
        # Evict on either pressure axis — entry count or estimated bytes —
        # but always keep the entry just inserted, so a single oversized
        # trace still caches (one eviction pass cannot help it anyway).
        while len(self._traces) > 1 and (
            len(self._traces) > self.trace_capacity
            or self._trace_resident_bytes > self.trace_bytes
        ):
            _, evicted = self._traces.popitem(last=False)
            self._trace_resident_bytes -= self._trace_cost(evicted)
            metrics.inc("session.trace.evictions")
        return trace

    # ------------------------------------------------------------------
    # Pipeline streams (LRU sharing the trace-cache byte budget)
    # ------------------------------------------------------------------
    def pipeline_stream(
        self,
        name: str,
        scale: float,
        max_instructions: int,
        predictor: ValuePredictor,
        variant: str = "base",
        threshold: Optional[float] = None,
        default_threshold: float = 0.8,
        input_name: str = "ref",
    ) -> List[StreamEntry]:
        """The prepared pipeline stream of one trace under one predictor.

        A stream is a pure function of (trace, predictor ``source()``
        routing), so it is cached under (canonical trace key, predictor
        ``static_fingerprint()``): a predictor × recovery × threshold
        campaign grid prepares each trace once per *fingerprint*, not once
        per cell — e.g. every ``DynamicRVP`` threshold point shares one
        stream.  A ``None`` fingerprint (``source()`` with side effects)
        bypasses the cache and rebuilds per call.

        Cached streams share the trace LRU's byte budget
        (``REPRO_SESSION_TRACE_BYTES``): stream bytes count toward the same
        ceiling, and stream entries are evicted (LRU) when the combined
        resident estimate exceeds it.
        """
        metrics = get_metrics()
        variant, eff_threshold = canonical_variant_key(variant, threshold, default_threshold)
        fingerprint = predictor.static_fingerprint()
        if fingerprint is None:
            metrics.inc("session.stream.uncacheable")
            trace = self.ref_trace(
                name, scale, max_instructions, variant, eff_threshold, default_threshold, input_name
            )
            return prepare_stream(trace, predictor)
        key = (name, scale, max_instructions, variant, eff_threshold, input_name, fingerprint)
        stream = self._streams.get(key)
        if stream is not None:
            self._streams.move_to_end(key)
            metrics.inc("session.stream.hits")
            return stream
        metrics.inc("session.stream.misses")
        trace = self.ref_trace(
            name, scale, max_instructions, variant, eff_threshold, default_threshold, input_name
        )
        stream = prepare_stream(trace, predictor)
        self._streams[key] = stream
        self._stream_resident_bytes += self._stream_cost(stream)
        # Same always-keep-the-newest rule as the trace LRU; the ceiling is
        # the *combined* trace + stream resident estimate.
        while len(self._streams) > 1 and (
            self._trace_resident_bytes + self._stream_resident_bytes > self.trace_bytes
        ):
            _, evicted = self._streams.popitem(last=False)
            self._stream_resident_bytes -= self._stream_cost(evicted)
            metrics.inc("session.stream.evictions")
        return stream

    # ------------------------------------------------------------------
    # Batched digests (one fused run per program across its inputs)
    # ------------------------------------------------------------------
    @staticmethod
    def _lane_digest(lane) -> str:
        """Canonical hash of one lane's final architectural outcome.

        Covers pc, both register files, commit count, halt status and every
        nonzero memory word (:class:`~repro.sim.memory.Memory` equality is
        modulo zero words, so the digest must be too).
        """
        hasher = hashlib.sha256()
        state = lane.state
        words = sorted(
            (index, value)
            for index, value in getattr(lane.memory, "_words", {}).items()
            if value
        )
        payload = (state.pc, lane.instructions, lane.halted, tuple(state.int_regs), tuple(state.fp_regs), tuple(words))
        hasher.update(repr(payload).encode())
        return hasher.hexdigest()

    def batch_digests(
        self,
        name: str,
        scale: float,
        max_instructions: int,
        input_names: Sequence[str] = ("ref", "train"),
        variant: str = "base",
        threshold: Optional[float] = None,
        default_threshold: float = 0.8,
    ) -> Dict[str, Dict[str, object]]:
        """Per-input digests of one program variant via a single fused run.

        All the inputs of one program become lanes of one
        :func:`~repro.sim.batched.run_batch` call — one decode, one vector
        loop — instead of N scalar runs.  Keys follow the same canonical
        value-key rules as every other session cache, so campaign cells that
        share a program share the batch.
        """
        variant, eff_threshold = canonical_variant_key(variant, threshold, default_threshold)
        key = (name, scale, max_instructions, variant, eff_threshold, tuple(input_names))
        metrics = get_metrics()
        cached = self._batches.get(key)
        if cached is not None:
            metrics.inc("session.batch.hits")
            return cached
        metrics.inc("session.batch.misses")
        from ..sim.batched import run_batch

        program = self.program_variant(
            name, scale, max_instructions, variant, eff_threshold, default_threshold
        )
        workload = self.workload(name, scale)
        memories = [workload.memory(input_name) for input_name in input_names]
        with metrics.timer("sim.wall"):
            lanes = run_batch(program, memories, max_instructions=max_instructions)
        digests: Dict[str, Dict[str, object]] = {}
        for input_name, lane in zip(input_names, lanes):
            if lane.error is not None:
                raise lane.error
            digests[input_name] = {
                "digest": self._lane_digest(lane),
                "instructions": lane.instructions,
                "halted": lane.halted,
            }
        self._batches[key] = digests
        return digests

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Resident entry counts per cache, for the bench/metrics surfaces."""
        return {
            "workloads": len(self._workloads),
            "train_artifacts": len(self._train),
            "profile_lists": len(self._lists),
            "programs": len(self._programs),
            "realloc_reports": len(self._realloc),
            "traces": len(self._traces),
            "trace_bytes": self._trace_resident_bytes,
            "streams": len(self._streams),
            "stream_bytes": self._stream_resident_bytes,
            "batch_digests": len(self._batches),
        }

    def reset(self) -> None:
        """Drop every cached artifact (tests, long-lived processes)."""
        self._workloads.clear()
        self._train.clear()
        self._lists.clear()
        self._programs.clear()
        self._realloc.clear()
        self._traces.clear()
        self._trace_resident_bytes = 0
        self._streams.clear()
        self._stream_resident_bytes = 0
        self._batches.clear()


#: The process-wide session every ExperimentRunner shares by default.
_GLOBAL = SimSession()


def get_session() -> SimSession:
    """The process-wide :class:`SimSession`."""
    return _GLOBAL


def reset_session() -> None:
    """Clear the process-wide session (tests, memory pressure)."""
    _GLOBAL.reset()


# ======================================================================
# Parallel suite execution
# ======================================================================
@dataclass(frozen=True)
class SuiteCell:
    """One (workload, config, recovery) unit of suite work."""

    workload: str
    config: str
    recovery: str

    @property
    def cell_id(self) -> str:
        """The journal identity of this cell (``workload/config/recovery``)."""
        return f"{self.workload}/{self.config}/{self.recovery}"


@dataclass
class SuiteReport:
    """Outcome of a :class:`ParallelSuiteRunner` run."""

    results: List = field(default_factory=list)  # List[ExperimentResult]
    failures: Dict[SuiteCell, str] = field(default_factory=dict)
    used_processes: bool = False
    #: Terminal journal status per executed cell: ``ok`` / ``failed`` / ``timeout``.
    statuses: Dict[SuiteCell, str] = field(default_factory=dict)
    #: ``transient`` / ``deterministic`` for every cell in ``failures``.
    failure_kinds: Dict[SuiteCell, str] = field(default_factory=dict)
    #: Total execution attempts per cell (1 = first try succeeded/failed fast).
    attempts: Dict[SuiteCell, int] = field(default_factory=dict)
    #: Cells satisfied by the shared content-addressed result store (L2)
    #: without any simulation at all.
    store_hits: int = 0


def derive_cell_timeout(max_instructions: int) -> float:
    """Per-cell wall-clock deadline derived from the instruction budget.

    A generous fixed floor (pool spin-up, profiling pass, variant builds)
    plus a per-instruction allowance several hundred times the measured
    steady-state cost, capped at the pre-existing 600 s ceiling.  Scaling the
    deadline with the budget means a hung 1.5k-instruction smoke cell is
    detected in ~a minute instead of ten.
    """
    return min(600.0, 60.0 + 2e-3 * max(0, max_instructions))


def _run_cell(
    cell: SuiteCell,
    machine: Optional[MachineConfig],
    max_instructions: int,
    threshold: float,
    scale: float,
):
    """Top-level worker (picklable): run one cell in this process's session."""
    from .experiment import ExperimentRunner

    runner = ExperimentRunner(
        cell.workload,
        scale=scale,
        machine=machine,
        max_instructions=max_instructions,
        threshold=threshold,
    )
    return runner.run(cell.config, recovery=RecoveryScheme.parse(cell.recovery))


class ParallelSuiteRunner:
    """Fan (workload × config × recovery) cells out over worker processes.

    Worker processes inherit nothing from the parent's session; each keeps
    its own, so cells for the same workload that land on the same worker
    share traces.  Failures are classified through the campaign taxonomy
    (:mod:`repro.runtime.errors`): *transient* failures (worker timeout,
    poisoned result, OS hiccup) are retried serially in the parent with
    bounded exponential backoff and deterministic jitter; *deterministic*
    failures (simulator faults, verifier diagnostics, budget exhaustion)
    fail fast — exactly one attempt — with the diagnostic preserved.  A
    broken pool degrades the rest of the run to serial.

    When a :class:`~repro.runtime.journal.RunJournal` is attached, every
    terminal cell state (``ok`` with the serialized result, ``failed`` /
    ``timeout`` with the error and its kind) is committed durably as it is
    reached, and a ``KeyboardInterrupt`` (Ctrl-C, or SIGTERM converted by
    the campaign layer) cancels queued futures without waiting for running
    ones and flushes the journal before unwinding — the run is resumable
    from exactly the cells that never committed.
    """

    #: Executor factory, ``callable(max_workers=n)`` with ``submit`` and
    #: ``shutdown``.  Overridable per instance — the deterministic fault
    #: injector (:mod:`repro.testing.faults`) swaps in an executor that
    #: forces timeouts, poisoned results and pool failures so the retry and
    #: serial-fallback paths below are exercised on purpose.
    executor_factory = ProcessPoolExecutor

    #: Injectable sleep (tests zero it to assert the schedule, not wait it).
    _sleep = staticmethod(time.sleep)

    def __init__(
        self,
        workloads: Sequence[str] = (),
        configs: Sequence[str] = (),
        recoveries: Sequence[RecoveryScheme] = (RecoveryScheme.SELECTIVE,),
        machine: Optional[MachineConfig] = None,
        max_instructions: int = 40_000,
        threshold: float = 0.8,
        scale: float = 1.0,
        jobs: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        retries: int = 2,
        journal=None,
        cells: Optional[Sequence[SuiteCell]] = None,
        store=None,
        retry_deadline: Optional[float] = None,
    ) -> None:
        if cells is not None:
            # Explicit cell list: the campaign resume path runs exactly the
            # non-``ok`` cells of a prior journal, in their original order.
            self.cells = list(cells)
        else:
            self.cells = [
                SuiteCell(workload, config, recovery.value)
                for workload in workloads
                for config in configs
                for recovery in recoveries
            ]
        self.machine = machine
        self.max_instructions = max_instructions
        self.threshold = threshold
        self.scale = scale
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cell_timeout = (
            derive_cell_timeout(max_instructions) if cell_timeout is None else cell_timeout
        )
        self.retries = max(0, retries)
        self.journal = journal
        #: Shared content-addressed :class:`~repro.runtime.store.ResultStore`
        #: (L2): hit cells are committed without simulation, fresh ``ok``
        #: results are published back for every later campaign.
        self.store = store
        #: Total-elapsed backoff budget for one cell's transient retries
        #: (defaults to the cell's wall-clock deadline): retrying must never
        #: cost more than the cell itself was allowed to.
        self.retry_deadline = self.cell_timeout if retry_deadline is None else retry_deadline

    # ------------------------------------------------------------------
    def run(self) -> SuiteReport:
        metrics = get_metrics()
        metrics.inc("pool.cells", len(self.cells))
        report = SuiteReport()
        cells = self._restore_from_store(self.cells, report)
        if self.jobs <= 1 or len(cells) <= 1:
            self._run_serial(cells, report)
            return report
        try:
            self._run_parallel(cells, report)
            report.used_processes = True
        except (process.BrokenProcessPool, OSError, RuntimeError) as exc:
            # Pool-level failure (sandboxed fork, dead workers, ...): finish
            # whatever is left serially rather than losing the suite.
            metrics.inc("pool.serial_fallbacks")
            done = {(r.workload, r.config, r.recovery) for r in report.results}
            remaining = [
                cell
                for cell in cells
                if (cell.workload, cell.config, cell.recovery) not in done and cell not in report.failures
            ]
            self._run_serial(remaining, report, note=f"pool failure: {exc}")
        return report

    # ------------------------------------------------------------------
    # Shared result store (the persistent L2 under each worker's SimSession)
    # ------------------------------------------------------------------
    def _effective_machine(self) -> MachineConfig:
        from ..uarch.config import table1_config

        return self.machine if self.machine is not None else table1_config()

    def store_key(self, cell: SuiteCell) -> str:
        """Content address of one cell under this runner's configuration."""
        from ..runtime.store import cell_store_key

        return cell_store_key(
            cell.cell_id,
            self._effective_machine(),
            self.max_instructions,
            self.threshold,
            self.scale,
        )

    def _restore_from_store(self, cells: Sequence[SuiteCell], report: SuiteReport) -> List[SuiteCell]:
        """Commit every store-hit cell as ``ok``; return the cells left to run.

        A hit is a *restored* result: no ExperimentRunner is constructed, no
        simulator runs, and the journal records the cell exactly as if it
        had executed — which is what makes identical cells free across
        campaigns, users and concurrent supervisors.
        """
        if self.store is None:
            return list(cells)
        from .experiment import ExperimentResult

        remaining: List[SuiteCell] = []
        for cell in cells:
            payload = self.store.get(self.store_key(cell))
            if payload is None:
                remaining.append(cell)
                continue
            try:
                result = ExperimentResult.from_dict(payload)
            except (KeyError, TypeError, ValueError):
                # A schema drift reads as a miss, never a crash.
                remaining.append(cell)
                continue
            report.store_hits += 1
            get_metrics().inc("pool.cells_from_store")
            self._commit_ok(cell, result, report, attempts=0, started=time.monotonic(), persist=False)
        return remaining

    # ------------------------------------------------------------------
    # Terminal-state commits (report + journal in one place)
    # ------------------------------------------------------------------
    def _commit_ok(
        self,
        cell: SuiteCell,
        result,
        report: SuiteReport,
        attempts: int,
        started: float,
        persist: bool = True,
    ) -> None:
        report.results.append(result)
        report.statuses[cell] = "ok"
        report.attempts[cell] = attempts
        payload = result.to_dict() if hasattr(result, "to_dict") else None
        if self.journal is not None:
            self.journal.record(
                cell.cell_id, "ok", attempts=attempts,
                elapsed_s=time.monotonic() - started, result=payload,
            )
        # Publish fresh results to the shared L2 (restored ones came from
        # there; re-putting them would only churn mtimes under prune).
        if persist and self.store is not None and payload is not None:
            try:
                self.store.put(self.store_key(cell), payload, cell_id=cell.cell_id)
            except OSError:
                # The store is an accelerator, never a correctness dependency:
                # a full or read-only store must not fail the cell.
                pass

    def _commit_failure(
        self,
        cell: SuiteCell,
        message: str,
        kind: str,
        report: SuiteReport,
        attempts: int,
        started: float,
        timed_out: bool = False,
    ) -> None:
        report.failures[cell] = message
        status = "timeout" if timed_out else "failed"
        report.statuses[cell] = status
        report.failure_kinds[cell] = kind
        report.attempts[cell] = attempts
        if self.journal is not None:
            self.journal.record(
                cell.cell_id, status, attempts=attempts,
                elapsed_s=time.monotonic() - started, error=message, error_kind=kind,
            )

    # ------------------------------------------------------------------
    def _run_serial(self, cells: Sequence[SuiteCell], report: SuiteReport, note: str = "") -> None:
        metrics = get_metrics()
        for cell in cells:
            started = time.monotonic()
            try:
                result = self._run_local(cell)
            except KeyboardInterrupt:
                self._flush_journal()
                raise
            except Exception as exc:
                message = f"{note + ': ' if note else ''}{exc!r}"
                self._commit_failure(
                    cell, message, classify_failure(exc), report,
                    attempts=1, started=started, timed_out=is_timeout(exc),
                )
            else:
                metrics.inc("pool.cells_serial")
                self._commit_ok(cell, result, report, attempts=1, started=started)

    def _run_local(self, cell: SuiteCell):
        return _run_cell(cell, self.machine, self.max_instructions, self.threshold, self.scale)

    def _flush_journal(self) -> None:
        if self.journal is not None:
            self.journal.flush()

    @staticmethod
    def _shutdown_pool(pool, cancel: bool) -> None:
        shutdown = getattr(pool, "shutdown", None)
        if shutdown is None:
            return
        if cancel:
            # Never wait on in-flight cells while unwinding: drop queued
            # work, leave running workers to die with the process.
            shutdown(wait=False, cancel_futures=True)
        else:
            shutdown(wait=True)

    def _run_parallel(self, cells: Sequence[SuiteCell], report: SuiteReport) -> None:
        metrics = get_metrics()
        workers = max(1, min(self.jobs, len(cells)))
        metrics.inc("pool.workers", workers)
        pool = self.executor_factory(max_workers=workers)
        try:
            futures = {
                pool.submit(
                    _run_cell, cell, self.machine, self.max_instructions, self.threshold, self.scale
                ): cell
                for cell in cells
            }
            with metrics.timer("pool.wall"):
                for future, cell in futures.items():
                    started = time.monotonic()
                    try:
                        result = future.result(timeout=self.cell_timeout)
                    except (process.BrokenProcessPool, KeyboardInterrupt):
                        raise
                    except Exception as exc:
                        if is_timeout(exc):
                            metrics.inc("pool.timeouts")
                            future.cancel()
                        self._retry_cell(cell, exc, report, started)
                    else:
                        metrics.inc("pool.cells_parallel")
                        self._commit_ok(cell, result, report, attempts=1, started=started)
        except BaseException:
            # Pool collapse, Ctrl-C, SIGTERM: make the journal durable and
            # abandon the pool without blocking on its running futures, so
            # the orphaned-pool leak cannot outlive the interrupt.
            self._shutdown_pool(pool, cancel=True)
            self._flush_journal()
            raise
        else:
            self._shutdown_pool(pool, cancel=False)

    def _retry_cell(self, cell: SuiteCell, first_error: Exception, report: SuiteReport, started: float) -> None:
        """Dispatch a failed cell through the failure taxonomy.

        Deterministic failures are final on the first attempt (replaying
        deterministic code on deterministic inputs replays the failure);
        transient failures are retried serially in the parent, up to
        ``self.retries`` times, behind deterministically-jittered backoff
        whose *total elapsed delay* is capped by ``self.retry_deadline``.
        A retry that raises a *deterministic* error also stops immediately.
        """
        metrics = get_metrics()
        if classify_failure(first_error) == DETERMINISTIC:
            metrics.inc("pool.fail_fast")
            self._commit_failure(
                cell, f"{first_error!r}", DETERMINISTIC, report,
                attempts=1, started=started, timed_out=is_timeout(first_error),
            )
            return
        last_error: Exception = first_error
        attempts = 1
        schedule = backoff_delays(
            self.retries,
            seed=(cell.workload, cell.config, cell.recovery),
            deadline=self.retry_deadline,
        )
        for delay in schedule:
            metrics.inc("pool.retries")
            self._sleep(delay)
            attempts += 1
            try:
                result = self._run_local(cell)
            except KeyboardInterrupt:
                self._flush_journal()
                raise
            except Exception as exc:
                last_error = exc
                if classify_failure(exc) == DETERMINISTIC:
                    break
            else:
                self._commit_ok(cell, result, report, attempts=attempts, started=started)
                return
        message = (
            f"first: {first_error!r}; retry: {last_error!r}"
            if attempts > 1
            else f"{first_error!r}"  # retries=0: there was no retry to cite
        )
        self._commit_failure(
            cell,
            message,
            classify_failure(last_error),
            report,
            attempts=attempts,
            started=started,
            timed_out=is_timeout(last_error),
        )
