"""High-level experiment runner: the paper's named configurations.

One :class:`ExperimentRunner` wraps one workload and provides every
configuration the paper evaluates, by name:

=====================  =====================================================
``no_predict``         baseline, no value prediction
``lvp`` / ``lvp_all``  1K-entry tagged last-value table (loads / all insts)
``grp`` / ``grp_all``  Gabbay & Mendelson register predictor
``srvp_same``          static RVP, loads with existing same-register reuse
``srvp_dead``          + dead-register correlation (profile-guided)
``srvp_live``          + live-register correlation
``srvp_live_lv``       + last-value reallocation
``drvp``               dynamic RVP, loads only, no compiler assistance
``drvp_dead``          loads, dead-register hints
``drvp_dead_lv``       loads, dead + last-value hints
``drvp_all``           dynamic RVP, all instructions
``drvp_all_dead``      all instructions, dead hints
``drvp_all_dead_lv``   all instructions, dead + last-value hints
``drvp_all_realloc``   Section 7.3: *realistic* reallocation — the program is
                       transformed by the graph-colouring reallocator, then
                       plain ``drvp_all`` runs with no hints at all
=====================  =====================================================

Profiles (the four lists and the critical-path profile) are always collected
on the **train** input and applied to runs on the **ref** input, like the
paper (Section 6).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Sequence, Tuple

from ..compiler.realloc import ReallocReport
from ..isa.program import Program
from ..profiling.lists import ProfileLists
from ..profiling.reuse import ReuseProfile
from ..sim.trace import TraceRecord
from ..uarch.config import MachineConfig, table1_config
from ..uarch.pipeline import simulate
from ..uarch.recovery import RecoveryScheme
from ..uarch.stats import SimStats
from ..vp.base import NoPredictor, ValuePredictor
from ..vp.context import ContextPredictor
from ..vp.gabbay import GabbayRegisterPredictor
from ..vp.lvp import LastValuePredictor
from ..vp.memory_renaming import MemoryRenamingPredictor
from ..vp.rvp import DynamicRVP
from ..vp.static_rvp import StaticRVP
from ..vp.stride import StridePredictor
from ..workloads.base import Workload
from .session import SimSession, get_session

CONFIG_NAMES = (
    "no_predict",
    "lvp",
    "lvp_all",
    "grp",
    "grp_all",
    "srvp_same",
    "srvp_dead",
    "srvp_live",
    "srvp_live_lv",
    "drvp",
    "drvp_dead",
    "drvp_dead_lv",
    "drvp_all",
    "drvp_all_dead",
    "drvp_all_dead_lv",
    "drvp_all_realloc",
    # Extended baselines the paper cites but excludes from its figures
    # (storage-heavier schemes; see repro.vp.stride / .memory_renaming).
    "stride",
    "stride_all",
    "memren",
    "context",
    "context_all",
)


@dataclass
class ExperimentResult:
    workload: str
    config: str
    recovery: str
    stats: SimStats

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    # Journal round-trip (``repro.runtime``): a committed cell is stored as
    # plain JSON so a resumed campaign restores it without re-simulating.
    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "config": self.config,
            "recovery": self.recovery,
            "stats": asdict(self.stats),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        return cls(
            workload=str(payload["workload"]),
            config=str(payload["config"]),
            recovery=str(payload["recovery"]),
            stats=SimStats(**payload["stats"]),
        )


class ExperimentRunner:
    """Profiles once, then runs any number of named configurations.

    All expensive artifacts (train profiles, program variants, ref traces)
    are memoized in a shared :class:`~repro.core.session.SimSession`, so any
    number of runners — across machine configurations, sweep points, and
    benchmark modules — run the functional simulator once per (workload,
    program variant).  Every variant/trace request goes through the session's
    canonical key function, so an explicit ``threshold=0.8`` and an implicit
    default hit the same cache entry.
    """

    def __init__(
        self,
        workload: str,
        scale: float = 1.0,
        machine: Optional[MachineConfig] = None,
        max_instructions: int = 60_000,
        threshold: float = 0.8,
        session: Optional[SimSession] = None,
    ) -> None:
        self.session = session if session is not None else get_session()
        self.workload: Workload = self.session.workload(workload, scale)
        self.scale = scale
        self.machine = machine or table1_config()
        self.max_instructions = max_instructions
        self.threshold = threshold

    # ------------------------------------------------------------------
    # Profiling on the train input
    # ------------------------------------------------------------------
    def train_profile(self) -> ReuseProfile:
        return self.session.train_artifacts(self.workload.name, self.scale, self.max_instructions).profile

    def profile_lists(self, threshold: Optional[float] = None, loads_only: bool = False) -> ProfileLists:
        threshold = threshold if threshold is not None else self.threshold
        return self.session.profile_lists(
            self.workload.name, self.scale, self.max_instructions, threshold, loads_only
        )

    # ------------------------------------------------------------------
    # Program variants and their ref traces
    # ------------------------------------------------------------------
    def program_variant(self, variant: str, threshold: Optional[float] = None) -> Program:
        """'base', 'srvp_<level>' (marked) or 'realloc' (transformed)."""
        return self.session.program_variant(
            self.workload.name, self.scale, self.max_instructions, variant, threshold, self.threshold
        )

    def ref_trace(self, variant: str = "base", threshold: Optional[float] = None) -> Sequence[TraceRecord]:
        return self.session.ref_trace(
            self.workload.name,
            self.scale,
            self.max_instructions,
            variant,
            threshold,
            default_threshold=self.threshold,
        )

    @property
    def realloc_report(self) -> Optional[ReallocReport]:
        """Report of the most recently keyed ``realloc`` variant (at this
        runner's default threshold)."""
        return self.session.realloc_report(
            self.workload.name, self.scale, self.max_instructions, None, self.threshold
        )

    # ------------------------------------------------------------------
    # Named configurations
    # ------------------------------------------------------------------
    def _build(self, config: str, threshold: Optional[float]) -> Tuple[str, ValuePredictor]:
        """(program variant, predictor) for a configuration name."""
        loads = self.profile_lists(threshold, loads_only=True)
        all_lists = self.profile_lists(threshold, loads_only=False)
        if config == "no_predict":
            return "base", NoPredictor()
        if config == "lvp":
            return "base", LastValuePredictor(loads_only=True)
        if config == "lvp_all":
            return "base", LastValuePredictor(loads_only=False)
        if config == "grp":
            return "base", GabbayRegisterPredictor(loads_only=True)
        if config == "grp_all":
            return "base", GabbayRegisterPredictor(loads_only=False)
        if config.startswith("srvp_"):
            level = config[len("srvp_") :]
            flags = {
                "same": {},
                "dead": {"use_dead": True},
                "live": {"use_dead": True, "use_live": True},
                "live_lv": {"use_dead": True, "use_live": True, "use_lv": True},
            }[level]
            return config, StaticRVP(lists=loads, name=config, **flags)
        if config == "drvp":
            return "base", DynamicRVP(loads_only=True)
        if config == "drvp_dead":
            return "base", DynamicRVP(loads_only=True, lists=loads, use_dead=True)
        if config == "drvp_dead_lv":
            return "base", DynamicRVP(loads_only=True, lists=loads, use_dead=True, use_lv=True)
        if config == "drvp_all":
            return "base", DynamicRVP(loads_only=False)
        if config == "drvp_all_dead":
            return "base", DynamicRVP(loads_only=False, lists=all_lists, use_dead=True)
        if config == "drvp_all_dead_lv":
            return "base", DynamicRVP(loads_only=False, lists=all_lists, use_dead=True, use_lv=True)
        if config == "drvp_all_realloc":
            return "realloc", DynamicRVP(loads_only=False, name="drvp_all_realloc")
        if config == "stride":
            return "base", StridePredictor(loads_only=True)
        if config == "stride_all":
            return "base", StridePredictor(loads_only=False)
        if config == "memren":
            return "base", MemoryRenamingPredictor()
        if config == "context":
            return "base", ContextPredictor(loads_only=True)
        if config == "context_all":
            return "base", ContextPredictor(loads_only=False)
        raise ValueError(f"unknown configuration {config!r}; choose from {CONFIG_NAMES}")

    def pipeline_stream(self, config: str, threshold: Optional[float] = None):
        """The cached pipeline stream for a configuration (see
        :meth:`SimSession.pipeline_stream`)."""
        variant, predictor = self._build(config, threshold)
        stream = self.session.pipeline_stream(
            self.workload.name,
            self.scale,
            self.max_instructions,
            predictor,
            variant,
            threshold,
            default_threshold=self.threshold,
        )
        return stream, predictor

    def run(
        self,
        config: str,
        recovery: RecoveryScheme = RecoveryScheme.SELECTIVE,
        threshold: Optional[float] = None,
    ) -> ExperimentResult:
        variant, predictor = self._build(config, threshold)
        # The session canonicalizes (variant, threshold) — base variants drop
        # the threshold, others resolve None to this runner's default — so no
        # per-call-site key arithmetic is needed (or allowed) here.  All
        # pipeline construction routes through the session's stream cache: a
        # predictor × recovery × threshold grid prepares each trace once per
        # predictor fingerprint, not once per cell.
        stream = self.session.pipeline_stream(
            self.workload.name,
            self.scale,
            self.max_instructions,
            predictor,
            variant,
            threshold,
            default_threshold=self.threshold,
        )
        stats = simulate(None, predictor, self.machine, recovery, stream=stream)
        return ExperimentResult(self.workload.name, config, recovery.value, stats)
