"""Parameter sweeps: vary one machine/predictor knob, measure the suite.

The paper fixes its machine at Table 1 and motivates the design by IQ
pressure, storage cost and confidence filtering.  :func:`sweep_machine` and
:func:`sweep` make those arguments quantitative for any knob::

    from dataclasses import replace
    from repro.core.sweep import sweep_machine
    from repro.uarch import table1_config

    rows = sweep_machine(
        "iq", [16, 32, 64],
        lambda iq: replace(table1_config(), iq_int=iq, iq_fp=iq),
        workloads=("m88ksim", "hydro2d"),
        configs=("no_predict", "drvp_all_dead"),
    )
"""

from __future__ import annotations

import numbers
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..uarch.config import MachineConfig
from ..uarch.recovery import RecoveryScheme
from .experiment import ExperimentRunner

SweepRows = Dict[Tuple[object, str, str], float]  # (point, workload, config) -> IPC


def _ordered_points(points: Iterable[object]) -> List[object]:
    """Sweep points in numeric order when all are numeric ([8, 16, 64], not
    [16, 64, 8]); fall back to ``str`` order for mixed or symbolic points."""
    items = list(points)
    if items and all(isinstance(p, numbers.Real) and not isinstance(p, bool) for p in items):
        return sorted(items)
    return sorted(items, key=str)


def sweep_machine(
    name: str,
    points: Iterable[object],
    make_machine: Callable[[object], MachineConfig],
    workloads: Sequence[str],
    configs: Sequence[str],
    max_instructions: int = 25_000,
    recovery: RecoveryScheme = RecoveryScheme.SELECTIVE,
    journal=None,
) -> SweepRows:
    """Run ``configs`` x ``workloads`` at every sweep point; returns IPCs.

    The architectural trace does not depend on the machine configuration, so
    all sweep points share one functional-sim run per (workload, program
    variant) through the process-wide :class:`~repro.core.session.SimSession`
    — only the cycle-level pipeline re-runs per point.

    With a :class:`~repro.runtime.journal.RunJournal` attached, every sweep
    cell (``<name>=<point>/<workload>/<config>``) is committed durably as it
    completes, cells already ``ok`` in the journal are restored from their
    stored IPC without re-running, and a deterministic cell failure is
    journaled and re-raised — so an interrupted sweep resumes from where it
    died.
    """
    rows: SweepRows = {}
    for point in points:
        machine = make_machine(point)
        for workload in workloads:
            runner = ExperimentRunner(workload, machine=machine, max_instructions=max_instructions)
            for config in configs:
                cell_id = f"{name}={point}/{workload}/{config}"
                if journal is not None:
                    entry = journal.states().get(cell_id)
                    if entry is not None and entry.get("status") == "ok":
                        rows[(point, workload, config)] = float(entry["result"]["ipc"])
                        continue
                try:
                    ipc = runner.run(config, recovery=recovery).ipc
                except Exception as exc:
                    if journal is not None:
                        from ..runtime.errors import classify_failure

                        journal.record(
                            cell_id, "failed", error=repr(exc), error_kind=classify_failure(exc)
                        )
                    raise
                rows[(point, workload, config)] = ipc
                if journal is not None:
                    journal.record(cell_id, "ok", result={"ipc": ipc})
    return rows


def sweep(
    points: Iterable[object],
    run_point: Callable[[object], Dict[str, float]],
) -> Dict[object, Dict[str, float]]:
    """Generic sweep: ``run_point`` returns a metrics dict per point."""
    return {point: run_point(point) for point in points}


def speedup_series(rows: SweepRows, workload: str, config: str, baseline: str = "no_predict") -> Dict[object, float]:
    """Speedup-over-baseline as a function of the sweep point."""
    points = {point for point, w, _ in rows if w == workload}
    return {
        point: rows[(point, workload, config)] / rows[(point, workload, baseline)]
        for point in _ordered_points(points)
        if (point, workload, baseline) in rows
    }


def render_sweep(rows: SweepRows, title: str = "") -> str:
    """Simple table: one row per (workload, config), one column per point."""
    points = _ordered_points({p for p, _, _ in rows})
    pairs = sorted({(w, c) for _, w, c in rows})
    lines = [title] if title else []
    header = [f"{'workload/config':28s}"] + [f"{str(p):>10s}" for p in points]
    lines.append("  ".join(header))
    for workload, config in pairs:
        cells = [f"{workload + '/' + config:28s}"]
        for point in points:
            value = rows.get((point, workload, config))
            cells.append(f"{value:10.3f}" if value is not None else f"{'-':>10s}")
        lines.append("  ".join(cells))
    return "\n".join(lines) + "\n"
