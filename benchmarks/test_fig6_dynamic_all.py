"""Figure 6 — dynamic register-based value prediction for all instructions.

Speedup over no-prediction for lvp_all, the Gabbay & Mendelson register
predictor (Grp_all, stride component removed "to equalize comparisons"),
and dynamic RVP for all instructions at three assistance levels.

Paper shape: drvp_all_dead_lv provides ~12% more performance than no
prediction; even the dead optimisation alone is competitive with buffer-based
LVP; the Gabbay register predictor clearly trails RVP (its per-register
confidence counters suffer "high interference ... as every instruction that
writes a register shares the same counter").
"""

from __future__ import annotations

from conftest import ALL_BENCHMARKS, run_once

from repro.core import ResultTable

CONFIGS = ("no_predict", "lvp_all", "grp_all", "drvp_all", "drvp_all_dead", "drvp_all_dead_lv")


def test_fig6_dynamic_all(benchmark, runners):
    def collect():
        table = ResultTable()
        for name in ALL_BENCHMARKS:
            runner = runners.get(name)
            for config in CONFIGS:
                table.add(runner.run(config))
        return table

    table = run_once(benchmark, collect)
    print("\n" + table.render_speedup("Figure 6: dynamic RVP for all instructions (speedup)"))

    lvp = table.mean_speedup("lvp_all")
    grp = table.mean_speedup("grp_all")
    drvp = table.mean_speedup("drvp_all")
    dead = table.mean_speedup("drvp_all_dead")
    dead_lv = table.mean_speedup("drvp_all_dead_lv")
    print(f"means: lvp={lvp:.3f} grp={grp:.3f} drvp={drvp:.3f} dead={dead:.3f} dead_lv={dead_lv:.3f}")

    # Substantial average gain for the full scheme (paper: ~12%).
    assert dead_lv > 1.08, dead_lv
    # The Gabbay register predictor is the weakest of the predictors.
    assert grp <= drvp + 0.005 and grp < dead and grp < lvp
    # dead+lv RVP is competitive with the much more expensive LVP table.
    assert dead_lv >= lvp - 0.02
    # m88ksim is the showcase: RVP's cross-instruction prediction (the
    # Figure 2b store-load pattern) beats LVP decisively there.
    assert table.speedup("m88ksim", "drvp_all_dead") > table.speedup("m88ksim", "lvp_all") + 0.05
