"""Figure 8 — value prediction on a more aggressive 16-wide processor.

The Section 7.4 machine doubles the instruction queues, functional units,
renaming registers and fetch bandwidth, and fetches up to three basic blocks
per cycle.  Series: lvp_all, drvp_all, drvp_all_dead_lv.

Paper shape: "In removing many of the limitations to instruction-level
parallelism existent in the previous processor, the performance of RVP
increases, both over no-prediction (15% performance gain) and over
traditional last-value prediction (5% higher performance).  In fact, RVP with
no compiler support (rvp_all) provides equal performance to the last-value
architecture."
"""

from __future__ import annotations

from conftest import ALL_BENCHMARKS, run_once

from repro.core import ExperimentRunner, ResultTable

CONFIGS = ("no_predict", "lvp_all", "drvp_all", "drvp_all_dead_lv")


def test_fig8_aggressive_processor(benchmark, runners, wide_machine):
    def collect():
        table = ResultTable()
        for name in ALL_BENCHMARKS:
            runner = runners.get(name, machine=wide_machine)
            for config in CONFIGS:
                table.add(runner.run(config))
        return table

    table = run_once(benchmark, collect)
    print("\n" + table.render_speedup("Figure 8: 16-wide machine (speedup over no-prediction)"))

    lvp = table.mean_speedup("lvp_all")
    drvp = table.mean_speedup("drvp_all")
    dead_lv = table.mean_speedup("drvp_all_dead_lv")
    print(f"means: lvp={lvp:.3f} drvp={drvp:.3f} dead_lv={dead_lv:.3f}")

    # Bigger machine, bigger gains: the full scheme beats the paper's 8-wide
    # average target comfortably, and beats the LVP table.
    assert dead_lv > 1.10
    assert dead_lv > lvp
    # Plain RVP (no compiler support) still provides real average gains.  The
    # paper reports it matching LVP exactly; in this reproduction it gains but
    # trails the table by a few percent (see EXPERIMENTS.md, Figure 8 notes).
    assert drvp > 1.04
    assert drvp >= lvp - 0.10


def test_fig8_gains_grow_with_width(benchmark, runners, wide_machine):
    """The paper's comparative claim: RVP's edge grows on the wider machine."""

    def collect():
        rows = {}
        for name in ("m88ksim", "hydro2d", "turb3d"):
            narrow = runners.get(name)
            wide = runners.get(name, machine=wide_machine)
            rows[name] = (
                narrow.run("drvp_all_dead_lv").ipc / narrow.run("no_predict").ipc,
                wide.run("drvp_all_dead_lv").ipc / wide.run("no_predict").ipc,
            )
        return rows

    rows = run_once(benchmark, collect)
    print("\nRVP speedup, 8-wide vs 16-wide:")
    for name, (narrow, wide) in rows.items():
        print(f"  {name:10s} {narrow:.3f} -> {wide:.3f}")
    grew = sum(1 for narrow, wide in rows.values() if wide >= narrow - 0.02)
    assert grew >= 2, rows
