"""Figure 5 — dynamic register-based value prediction for load instructions.

Speedup over no-prediction for buffer-based LVP (loads) and dynamic RVP for
loads at three assistance levels (none / dead-register / dead+last-value).

Paper shape: "RVP-dead only slightly under-performs the much more expensive
last value prediction, while RVP-dead-lv outperforms LVP somewhat, achieving
an 8% average gain over no prediction."
"""

from __future__ import annotations

from conftest import ALL_BENCHMARKS, run_once

from repro.core import ResultTable

CONFIGS = ("no_predict", "lvp", "drvp", "drvp_dead", "drvp_dead_lv")


def test_fig5_dynamic_loads(benchmark, runners):
    def collect():
        table = ResultTable()
        for name in ALL_BENCHMARKS:
            runner = runners.get(name)
            for config in CONFIGS:
                table.add(runner.run(config))
        return table

    table = run_once(benchmark, collect)
    print("\n" + table.render_speedup("Figure 5: dynamic RVP for loads (speedup over no-prediction)"))

    lvp = table.mean_speedup("lvp")
    drvp = table.mean_speedup("drvp")
    dead = table.mean_speedup("drvp_dead")
    dead_lv = table.mean_speedup("drvp_dead_lv")

    # Everything provides real average gains over no-prediction.
    assert lvp > 1.02 and dead_lv > 1.04
    # Compiler assistance helps dynamic RVP (dead and dead+lv over plain).
    assert dead >= drvp - 0.005
    assert dead_lv >= dead - 0.005
    # The paper's punchline: RVP with dead+lv assistance is competitive with
    # (or better than) the buffer-based last-value predictor.
    assert dead_lv >= lvp - 0.02, f"drvp_dead_lv {dead_lv:.3f} far below lvp {lvp:.3f}"
