"""Figure 1 — the degree of register-value reuse for loads.

The paper's opening measurement: for every load in the SPEC suite, how often
is the loaded value already (cumulatively) in the same register / in the same
or a dead register / in any register / in a register or equal to the load's
last value.  The paper's headline: "At least 75% of the time, the value
loaded from memory is either already in the register file, or was recently
there", with the C SPEC and F SPEC averages shown as grouped bars.
"""

from __future__ import annotations

from conftest import ALL_BENCHMARKS, MAX_INSTS, run_once

from repro.profiling import ReuseProfile
from repro.sim import run_program
from repro.workloads import C_SPEC, F_SPEC, make_workload


def _collect():
    rows = {}
    for name in ALL_BENCHMARKS:
        workload = make_workload(name)
        program, memory = workload.build("ref")
        result = run_program(program, memory=memory, max_instructions=MAX_INSTS, collect_trace=True)
        profile = ReuseProfile.from_trace(result.trace)
        rows[name] = profile.fig1.fractions()
    return rows


def _mean(rows, names, key):
    return sum(rows[n][key] for n in names) / len(names)


def test_fig1_register_reuse(benchmark):
    rows = run_once(benchmark, _collect)

    print("\nFigure 1: register-value reuse for loads (cumulative fractions)")
    print(f"{'program':10s} {'same':>7s} {'dead':>7s} {'any':>7s} {'any|lvp':>8s}")
    for name, f in rows.items():
        print(f"{name:10s} {f['same']:7.1%} {f['dead']:7.1%} {f['any']:7.1%} {f['any_or_lvp']:8.1%}")
    for label, group in (("C SPEC", C_SPEC), ("F SPEC", F_SPEC)):
        print(
            f"{label:10s} {_mean(rows, group, 'same'):7.1%} {_mean(rows, group, 'dead'):7.1%} "
            f"{_mean(rows, group, 'any'):7.1%} {_mean(rows, group, 'any_or_lvp'):8.1%}"
        )

    # Shape assertions.
    for name, f in rows.items():
        # The four categories are cumulative by construction.
        assert f["same"] <= f["dead"] + 1e-9, name
        assert f["dead"] <= f["any"] + 1e-9, name
        assert f["any"] <= f["any_or_lvp"] + 1e-9, name
    # The paper's headline: substantial reuse on average; the dead-register
    # category adds visibly over same-register somewhere in the suite.
    overall = _mean(rows, list(rows), "any_or_lvp")
    assert overall >= 0.40, f"suite average any|lvp fraction too low: {overall:.1%}"
    assert any(rows[n]["dead"] - rows[n]["same"] > 0.05 for n in rows), "dead-register reuse never material"
