"""Figure 7 — speedup with a realistic model of register reallocation.

For the four applications where reallocation matters (hydro2d, li, mgrid,
su2cor): LVP, dynamic RVP for all instructions with *no* reallocation, with
the full Section 7.3 graph-colouring reallocation, and with ideal
reallocation (the profile-hint model).

Paper shape: "Compiler-based register reallocation appears able to generate
most of the performance potential uncovered by our profiles.  In each case
where traditional last-value prediction outperformed the base DRVP result,
the register reallocation was sufficient to exceed it" (we assert the
first claim strictly and the second as a strong tendency — see
EXPERIMENTS.md for the per-program discussion).
"""

from __future__ import annotations

from conftest import run_once

from repro.core import ResultTable

PROGRAMS = ("hydro2d", "li", "mgrid", "su2cor")
CONFIGS = ("no_predict", "lvp", "drvp_all", "drvp_all_realloc", "drvp_all_dead_lv")


def test_fig7_realistic_reallocation(benchmark, runners):
    def collect():
        table = ResultTable()
        reports = {}
        for name in PROGRAMS:
            runner = runners.get(name)
            for config in CONFIGS:
                table.add(runner.run(config))
            reports[name] = runner.realloc_report
        return table, reports

    table, reports = run_once(benchmark, collect)
    print("\n" + table.render_speedup("Figure 7: realistic register reallocation (speedup)"))
    for name, report in reports.items():
        print(
            f"{name:10s} dead applied {report.dead_applied}/{report.dead_attempted} "
            f"(conflicting {report.dead_conflicting}, foreign {report.dead_foreign}); "
            f"lvr applied {report.lvr_applied}/{report.lvr_attempted} "
            f"(not-in-loop {report.lvr_not_in_loop}, shared {report.lvr_shared})"
        )

    for name in PROGRAMS:
        base = table.speedup(name, "drvp_all")
        realloc = table.speedup(name, "drvp_all_realloc")
        ideal = table.speedup(name, "drvp_all_dead_lv")
        # Reallocation never hurts the unassisted result...
        assert realloc >= base - 0.01, (name, base, realloc)
        # ...and does not exceed what the ideal profile model allows (small
        # tolerance: the realistic transform can shift cache/queue timing).
        assert realloc <= max(ideal, base) + 0.05, (name, realloc, ideal)
    # The reallocator actually applied reuses somewhere, and abandoned some
    # (the paper: "we typically have thrown out over half of the reuses").
    assert any(r.dead_applied + r.lvr_applied > 0 for r in reports.values())
    assert any(
        r.dead_conflicting + r.dead_foreign + r.lvr_not_in_loop + r.lvr_shared > 0 for r in reports.values()
    )
    # mgrid is the clean showcase: realloc recovers most of ideal and beats LVP.
    assert table.speedup("mgrid", "drvp_all_realloc") > table.speedup("mgrid", "lvp")
