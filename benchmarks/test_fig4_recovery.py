"""Figure 4 — the effect of the misprediction-recovery mechanism.

IPC for no-prediction and static RVP (dead optimisation) under the three
recovery schemes — refetch, reissue, selective reissue — with a conservative
90% profile threshold ("refetch and reissue require more conservative
prediction").

Paper shape: "the relatively simple refetch scheme performs well on this
architecture, often outperforming reissue by large margins and occasionally
beating selective reissue"; selective reissue is the best overall.
"""

from __future__ import annotations

from conftest import ALL_BENCHMARKS, run_once

from repro.core import ResultTable
from repro.uarch import RecoveryScheme

SCHEMES = (RecoveryScheme.REFETCH, RecoveryScheme.REISSUE, RecoveryScheme.SELECTIVE)


def test_fig4_recovery(benchmark, runners):
    def collect():
        table = ResultTable()
        for name in ALL_BENCHMARKS:
            runner = runners.get(name, threshold=0.9)
            table.add(runner.run("no_predict"))
            for scheme in SCHEMES:
                result = runner.run("srvp_dead", recovery=scheme, threshold=0.9)
                result.config = f"srvp_{scheme.value}"
                table.add(result)
        return table

    table = run_once(benchmark, collect)
    print("\n" + table.render_ipc("Figure 4: recovery mechanisms (IPC, srvp_dead @ 90%)"))

    refetch = table.mean_speedup("srvp_refetch")
    reissue = table.mean_speedup("srvp_reissue")
    selective = table.mean_speedup("srvp_selective")
    print(f"mean speedups: refetch={refetch:.3f} reissue={reissue:.3f} selective={selective:.3f}")

    # Selective reissue provides the best overall performance (tolerance:
    # the paper itself notes refetch "occasionally beating selective
    # reissue", and at small instruction budgets the two can tie).
    assert selective >= refetch - 0.015 and selective >= reissue - 0.015
    # Refetch outperforms reissue on several programs (the paper's surprise).
    refetch_wins = sum(
        1 for n in ALL_BENCHMARKS if table.speedup(n, "srvp_refetch") > table.speedup(n, "srvp_reissue")
    )
    assert refetch_wins >= 3, f"refetch beat reissue on only {refetch_wins} programs"
