"""Table 1 — processor parameters used in the simulator.

Regenerates the parameter table and checks the modelled machine matches the
paper's configuration exactly (this is the one 'result' that must match
absolutely, not just in shape).
"""

from __future__ import annotations

from conftest import run_once

from repro.uarch import aggressive_config, table1_config


def test_table1_parameters(benchmark):
    cfg = run_once(benchmark, table1_config)

    rows = [
        ("Inst queue size", f"{cfg.iq_int} int, {cfg.iq_fp} fp"),
        ("Functional units", f"{cfg.fu_int} integer ({cfg.fu_ldst} can perform loads/stores); {cfg.fu_fp} fp"),
        ("Fetch bandwidth", f"{cfg.fetch_width} instructions"),
        ("Branch prediction", f"{cfg.btb_entries}-entry BTB, {cfg.pht_entries} x 2-bit PHT, gshare"),
        ("L1 I-cache", f"{cfg.l1i.size_bytes // 1024}KB, {cfg.l1i.assoc}-way, {cfg.l1i.line_bytes}B lines, {cfg.l1i.miss_penalty}-cycle miss"),
        ("L1 D-cache", f"{cfg.l1d.size_bytes // 1024}KB, {cfg.l1d.assoc}-way, {cfg.l1d.line_bytes}B lines, {cfg.l1d.miss_penalty}-cycle miss"),
        ("L2 cache", f"{cfg.l2.size_bytes // 1024}KB, {cfg.l2.assoc}-way, {cfg.l2.line_bytes}B lines, {cfg.l2.miss_penalty}-cycle miss"),
    ]
    print("\nTable 1: processor parameters")
    for name, value in rows:
        print(f"  {name:18s} {value}")

    assert cfg.iq_int == 32 and cfg.iq_fp == 32
    assert cfg.fu_int == 6 and cfg.fu_ldst == 4 and cfg.fu_fp == 3
    assert cfg.fetch_width == 8
    assert cfg.btb_entries == 256 and cfg.pht_entries == 2048
    assert cfg.l1i.size_bytes == 32 * 1024 and cfg.l1i.assoc == 4 and cfg.l1i.line_bytes == 64
    assert cfg.l1d.miss_penalty == 20
    assert cfg.l2.size_bytes == 512 * 1024 and cfg.l2.assoc == 2 and cfg.l2.miss_penalty == 80

    wide = aggressive_config()
    # Section 7.4: double queues, FUs, renaming registers, fetch bandwidth;
    # up to three basic blocks per cycle.
    assert wide.iq_int == 2 * cfg.iq_int and wide.fu_int == 2 * cfg.fu_int
    assert wide.fetch_width == 2 * cfg.fetch_width and wide.fetch_blocks == 3
    assert wide.rename_regs == 2 * cfg.rename_regs
