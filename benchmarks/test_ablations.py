"""Ablations of the paper's design choices (DESIGN.md Section 5).

Not figures from the paper, but studies of the knobs the paper fixes with a
sentence of justification:

* **Untagged vs tagged RVP counters** — Section 7.2: "untagged counters
  actually outperform tagged ... positive interference can be exploited".
* **Confidence threshold** — Section 6 fixes 7 ("a conservative filter");
  lower thresholds trade accuracy for coverage.
* **Prediction read ports** — Section 4.2 argues one extra port suffices;
  we measure how binding a 1-port limit actually is.
* **Counter table size** — the paper gives RVP the same 1K entries as LVP
  although its entries are 10x smaller; a small table tests the
  interference-tolerance claim.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import MAX_INSTS, run_once

from repro.core import ExperimentRunner
from repro.uarch import RecoveryScheme, simulate, table1_config
from repro.vp import DynamicRVP

PROGRAMS = ("m88ksim", "li", "mgrid")


def _speedup(runner, predictor):
    base = runner.run("no_predict").stats
    trace = runner.ref_trace("base")
    stats = simulate(trace, predictor, runner.machine, RecoveryScheme.SELECTIVE)
    return stats.ipc / base.ipc, stats


def test_ablation_untagged_vs_tagged_counters(benchmark, runners):
    def collect():
        rows = {}
        for name in PROGRAMS:
            runner = runners.get(name)
            untagged, su = _speedup(runner, DynamicRVP(tagged=False))
            tagged, st_ = _speedup(runner, DynamicRVP(tagged=True))
            rows[name] = (untagged, su.coverage, tagged, st_.coverage)
        return rows

    rows = run_once(benchmark, collect)
    print("\nAblation: RVP confidence-counter tagging")
    print(f"{'program':10s} {'untagged':>9s} {'cov':>6s} {'tagged':>9s} {'cov':>6s}")
    for name, (u, uc, t, tc) in rows.items():
        print(f"{name:10s} {u:9.3f} {uc:6.1%} {t:9.3f} {tc:6.1%}")
    # The paper's claim: tags buy nothing for RVP (small tolerance).
    mean_untagged = sum(r[0] for r in rows.values()) / len(rows)
    mean_tagged = sum(r[2] for r in rows.values()) / len(rows)
    assert mean_untagged >= mean_tagged - 0.01


def test_ablation_confidence_threshold(benchmark, runners):
    def collect():
        runner = runners.get("m88ksim")
        rows = {}
        for threshold in (3, 5, 7):
            speedup, stats = _speedup(runner, DynamicRVP(threshold=threshold))
            rows[threshold] = (speedup, stats.coverage, stats.accuracy)
        return rows

    rows = run_once(benchmark, collect)
    print("\nAblation: confidence threshold (m88ksim, drvp_all)")
    for threshold, (speedup, coverage, accuracy) in rows.items():
        print(f"  threshold {threshold}: speedup {speedup:.3f}  coverage {coverage:.1%}  accuracy {accuracy:.1%}")
    # Lower thresholds trade accuracy for coverage.
    assert rows[3][1] >= rows[7][1] - 1e-9  # coverage
    assert rows[7][2] >= rows[3][2] - 0.02  # accuracy


def test_ablation_prediction_ports(benchmark, runners):
    def collect():
        rows = {}
        for ports in (None, 2, 1):
            machine = replace(table1_config(), pred_ports=ports)
            runner = ExperimentRunner("m88ksim", machine=machine, max_instructions=MAX_INSTS)
            base = runner.run("no_predict").ipc
            rows[ports] = runner.run("drvp_all_dead").ipc / base
        return rows

    rows = run_once(benchmark, collect)
    print("\nAblation: extra prediction read ports (m88ksim, drvp_all_dead)")
    for ports, speedup in rows.items():
        print(f"  ports={ports!s:5s} speedup {speedup:.3f}")
    # The paper's argument: one port captures nearly all the benefit.
    assert rows[1] >= rows[None] - 0.05


def test_ablation_iq_size(benchmark, runners):
    """Section 7.1.1 quantified: the instruction queues are the structure
    value prediction interacts with.  On a chain-bound interpreter, bigger
    queues let a broken chain expose *more* parallelism, so RVP's edge grows
    with queue size — the same effect that makes the Section 7.4 16-wide
    machine the best showcase for RVP."""

    def collect():
        from repro.core.sweep import speedup_series, sweep_machine

        rows = sweep_machine(
            "iq",
            [16, 32, 64],
            lambda iq: replace(table1_config(), iq_int=iq, iq_fp=iq),
            workloads=("m88ksim",),
            configs=("no_predict", "drvp_all_dead"),
            max_instructions=MAX_INSTS,
        )
        return rows, speedup_series(rows, "m88ksim", "drvp_all_dead")

    rows, series = run_once(benchmark, collect)
    print("\nAblation: instruction-queue size (m88ksim)")
    for iq in (16, 32, 64):
        print(f"  iq={iq:3d}: base IPC {rows[(iq, 'm88ksim', 'no_predict')]:.3f}  "
              f"drvp_all_dead speedup {series[iq]:.3f}")
    # The baseline benefits from bigger queues; prediction helps at every size.
    assert rows[(64, "m88ksim", "no_predict")] >= rows[(16, "m88ksim", "no_predict")]
    assert all(s > 1.0 for s in series.values())


def test_ablation_small_counter_table(benchmark, runners):
    def collect():
        runner = runners.get("li")
        big, _ = _speedup(runner, DynamicRVP(entries=1024))
        small, _ = _speedup(runner, DynamicRVP(entries=64))
        return big, small

    big, small = run_once(benchmark, collect)
    print(f"\nAblation: counter table size (li): 1K entries {big:.3f} vs 64 entries {small:.3f}")
    # RVP tolerates heavy counter interference (the paper's loop argument).
    assert small >= big - 0.05
