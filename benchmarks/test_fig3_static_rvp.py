"""Figure 3 — static register-based value prediction on SPEC95 programs.

IPC with selective-reissue recovery for: no prediction, buffer-based LVP
(loads), and static RVP at increasing levels of compiler support —
srvp_same (no support), srvp_dead, srvp_live, srvp_live_lv.  Profile
threshold 80% (the paper's default for this figure).

Paper shape: in three of nine programs unmodified code already gains >=3%;
the dead optimisation adds more (li gains another 8%, mgrid 21%); levels are
monotonically non-decreasing in available reuse.
"""

from __future__ import annotations

from conftest import ALL_BENCHMARKS, run_once

from repro.core import ResultTable

CONFIGS = ("no_predict", "lvp", "srvp_same", "srvp_dead", "srvp_live", "srvp_live_lv")


def test_fig3_static_rvp(benchmark, runners):
    def collect():
        table = ResultTable()
        for name in ALL_BENCHMARKS:
            runner = runners.get(name)
            for config in CONFIGS:
                table.add(runner.run(config))
        return table

    table = run_once(benchmark, collect)
    print("\n" + table.render_ipc("Figure 3: static RVP (IPC, selective reissue)"))
    print(table.render_speedup("Figure 3 as speedups"))

    gains_same = [table.speedup(n, "srvp_same") for n in ALL_BENCHMARKS]
    gains_dead = [table.speedup(n, "srvp_dead") for n in ALL_BENCHMARKS]

    # Some programs gain >= 3% with no compiler support at all.
    assert sum(1 for g in gains_same if g >= 1.03) >= 2, gains_same
    # The dead optimisation helps beyond same-register marking on average...
    assert sum(gains_dead) > sum(gains_same)
    # ...and specifically for li and mgrid, the paper's two callouts.
    assert table.speedup("li", "srvp_dead") > table.speedup("li", "srvp_same")
    assert table.speedup("mgrid", "srvp_dead") > table.speedup("mgrid", "srvp_same")
    # live/live_lv never reduce available reuse below the dead level (small
    # tolerance: they can perturb confidence warmup).
    for name in ALL_BENCHMARKS:
        assert table.speedup(name, "srvp_live_lv") >= table.speedup(name, "srvp_dead") - 0.03, name
