"""Table 2 — percentage of instructions predicted and prediction accuracy.

For all-instruction prediction: dynamic RVP with the dead optimisation, with
dead+last-value, buffer-based LVP, and the Gabbay & Mendelson register
predictor.  Cells are "% insts predicted / accuracy %".

Paper shape: both RVP and LVP get very high accuracy from the conservative
resetting counters (threshold 7); coverage correlates with performance better
than accuracy does; the G&M predictor's coverage is far below RVP's on the
register-sharing-heavy codes; m88ksim and turb3d have the highest coverage.
"""

from __future__ import annotations

from conftest import ALL_BENCHMARKS, run_once

from repro.core import ResultTable

CONFIGS = ("drvp_all_dead", "drvp_all_dead_lv", "lvp_all", "grp_all")


def test_table2_coverage(benchmark, runners):
    def collect():
        table = ResultTable()
        for name in ALL_BENCHMARKS:
            runner = runners.get(name)
            for config in CONFIGS:
                table.add(runner.run(config))
        return table

    table = run_once(benchmark, collect)
    print("\n" + table.render_coverage("Table 2: % insts predicted / accuracy"))

    for name in ALL_BENCHMARKS:
        for config in CONFIGS:
            accuracy = table.accuracy(name, config)
            coverage = table.coverage(name, config)
            assert 0.0 <= coverage <= 1.0
            if coverage > 0.02:
                # The resetting counters keep accuracy high wherever
                # predictions actually fire.
                assert accuracy > 0.80, (name, config, accuracy)
    # dead_lv coverage >= dead coverage (it adds candidates).
    for name in ALL_BENCHMARKS:
        assert table.coverage(name, "drvp_all_dead_lv") >= table.coverage(name, "drvp_all_dead") - 0.02, name
    # m88ksim and turb3d are the coverage leaders for RVP.
    rvp_cov = {n: table.coverage(n, "drvp_all_dead") for n in ALL_BENCHMARKS}
    top3 = sorted(rvp_cov, key=rvp_cov.get, reverse=True)[:4]
    assert "m88ksim" in top3 or "turb3d" in top3, rvp_cov
    # go has the lowest RVP coverage of the suite (within noise).
    assert rvp_cov["go"] <= min(rvp_cov.values()) + 0.03, rvp_cov
