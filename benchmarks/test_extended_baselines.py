"""Extended baselines: the storage-heavy schemes the paper cites but
excludes from its figures (Section 2 / Figure 3 discussion).

The paper compares RVP only against last-value prediction because "a key
advantage of RVP prediction is the drastic reduction in required storage";
stride predictors [4], context/hybrid predictors [7, 13] and memory-renaming
architectures [16, 11] all add storage *beyond* LVP.  This benchmark runs
two of those — Gabbay-style stride prediction and Tyson/Austin-style memory
renaming — next to LVP and RVP, to check the paper's implicit claim: the
cheap register-file predictor stays competitive with the expensive ones on
this machine.
"""

from __future__ import annotations

from conftest import ALL_BENCHMARKS, run_once

from repro.core import ResultTable

CONFIGS = ("no_predict", "lvp_all", "stride_all", "context_all", "memren", "drvp_all_dead_lv")


def test_extended_baselines(benchmark, runners):
    def collect():
        table = ResultTable()
        for name in ALL_BENCHMARKS:
            runner = runners.get(name)
            for config in CONFIGS:
                table.add(runner.run(config))
        return table

    table = run_once(benchmark, collect)
    print("\n" + table.render_speedup("Extended baselines (speedup over no-prediction)"))
    print(table.render_coverage("coverage/accuracy"))

    rvp = table.mean_speedup("drvp_all_dead_lv")
    stride = table.mean_speedup("stride_all")
    context = table.mean_speedup("context_all")
    memren = table.mean_speedup("memren")
    lvp = table.mean_speedup("lvp_all")
    print(f"means: lvp={lvp:.3f} stride={stride:.3f} context={context:.3f} "
          f"memren={memren:.3f} rvp_dead_lv={rvp:.3f}")

    # The storageless scheme stays competitive with every buffer-based one.
    assert rvp >= max(stride, context, memren, lvp) - 0.06
    # Memory renaming shines exactly where the paper's Figure 2b pattern
    # lives (the interpreter's store->load pc channel)...
    assert table.speedup("m88ksim", "memren") > 1.10
    # ...and RVP with the dead list captures the same channel.
    assert table.speedup("m88ksim", "drvp_all_dead_lv") >= table.speedup("m88ksim", "memren") - 0.05
