"""Perf-guard: the shared SimSession eliminates redundant functional-sim runs.

The architectural trace is machine-independent, so a machine sweep must pay
the functional simulator exactly once per (workload, program variant) — the
metrics counters make that auditable.  These guards pin the contract:

* repeating an ``ExperimentRunner.run`` triggers **zero** additional
  functional-sim invocations,
* a 3-point machine sweep over 2 workloads × 2 configurations runs the
  functional simulator exactly once per (workload, program variant) — here
  2 workloads × (train + base ref) = 4 runs total instead of the seed's
  3 × 2 × (2 + 2) = 24,
* re-running the whole sweep against the warm session is measurably faster
  and simulates nothing.
"""

from __future__ import annotations

import time
from dataclasses import replace

from conftest import run_once

from repro.core import get_metrics, sweep_machine
from repro.core.experiment import ExperimentRunner
from repro.uarch.config import table1_config

#: Distinct budget so these tests never share session keys with the other
#: benchmark modules (deltas below are then exact, not lower bounds).
GUARD_INSTS = 7_777

SWEEP_POINTS = (16, 32, 48)
SWEEP_WORKLOADS = ("m88ksim", "li")
SWEEP_CONFIGS = ("no_predict", "drvp_all")  # both use the 'base' program variant


def _run_sweep():
    return sweep_machine(
        "iq",
        SWEEP_POINTS,
        lambda iq: replace(table1_config(), iq_int=iq, iq_fp=iq),
        workloads=SWEEP_WORKLOADS,
        configs=SWEEP_CONFIGS,
        max_instructions=GUARD_INSTS,
    )


def test_repeat_run_simulates_nothing(benchmark):
    metrics = get_metrics()
    runner = ExperimentRunner("go", max_instructions=GUARD_INSTS)
    runner.run("no_predict")  # warm the session (train + ref)

    before = metrics.get("sim.runs")
    result = run_once(benchmark, lambda: runner.run("no_predict"))
    assert result.ipc > 0
    assert metrics.get("sim.runs") == before, "repeat run re-invoked the functional simulator"


def test_sweep_runs_one_funcsim_per_workload_variant(benchmark):
    metrics = get_metrics()
    runs0 = metrics.get("sim.runs")
    trace_miss0 = metrics.get("session.trace.misses")
    profile_miss0 = metrics.get("session.profile.misses")
    trace_hit0 = metrics.get("session.trace.hits")

    t0 = time.perf_counter()
    rows = run_once(benchmark, _run_sweep)
    cold_seconds = time.perf_counter() - t0

    assert len(rows) == len(SWEEP_POINTS) * len(SWEEP_WORKLOADS) * len(SWEEP_CONFIGS)
    # One train pass + one base-variant ref trace per workload — nothing else.
    assert metrics.get("sim.runs") - runs0 == 2 * len(SWEEP_WORKLOADS)
    assert metrics.get("session.trace.misses") - trace_miss0 == len(SWEEP_WORKLOADS)
    assert metrics.get("session.profile.misses") - profile_miss0 == len(SWEEP_WORKLOADS)
    # Every other (point, workload, config) cell hit the trace cache.
    expected_hits = len(SWEEP_POINTS) * len(SWEEP_WORKLOADS) * len(SWEEP_CONFIGS) - len(SWEEP_WORKLOADS)
    assert metrics.get("session.trace.hits") - trace_hit0 == expected_hits

    # Warm re-run: identical results, zero simulation, measurably faster.
    runs_warm = metrics.get("sim.runs")
    t1 = time.perf_counter()
    rows_again = _run_sweep()
    warm_seconds = time.perf_counter() - t1
    assert rows_again == rows
    assert metrics.get("sim.runs") == runs_warm

    print(
        f"\nsession-cache sweep guard: cold {cold_seconds:.2f}s, warm {warm_seconds:.2f}s "
        f"({cold_seconds / warm_seconds:.2f}x; funcsim runs: {2 * len(SWEEP_WORKLOADS)} cold, 0 warm)"
    )
    # The warm sweep still pays the 12 pipeline runs, so the bound is loose;
    # it exists to catch the cache silently disappearing.
    assert warm_seconds < cold_seconds * 1.2
