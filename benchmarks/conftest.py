"""Shared infrastructure for the figure/table reproduction benchmarks.

Each benchmark module regenerates one table or figure from the paper.  The
simulated instruction budget is deliberately small by default so the whole
harness runs in minutes; scale it up for higher-fidelity numbers:

    REPRO_MAX_INSTS=200000 pytest benchmarks/ --benchmark-only -s

Benchmarks print their rows/series (run pytest with ``-s`` to see them) and
assert the *shape* relations the paper reports — who wins, roughly by how
much, where the crossovers fall — not absolute IPC values (see DESIGN.md).
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.core import ExperimentRunner
from repro.uarch.config import MachineConfig, aggressive_config, table1_config
from repro.workloads.suite import WORKLOAD_CLASSES

#: Simulated committed-instruction budget per run.
MAX_INSTS = int(os.environ.get("REPRO_MAX_INSTS", "25000"))

ALL_BENCHMARKS = tuple(WORKLOAD_CLASSES)


class RunnerCache:
    """Session-wide cache of ExperimentRunners.

    Runners are thin now — traces, profiles and program variants live in the
    process-wide :class:`repro.core.SimSession`, so two runners for the same
    workload share every functional-sim artifact even across machine
    configurations.  Caching the runner objects still saves rebuilding them
    per benchmark module and keeps per-(machine, threshold) identity for
    fixtures that rely on it.
    """

    def __init__(self) -> None:
        self._runners: Dict[Tuple[str, str, float], ExperimentRunner] = {}

    def get(self, name: str, machine: MachineConfig = None, threshold: float = 0.8) -> ExperimentRunner:
        machine = machine or table1_config()
        key = (name, machine.name, threshold)
        if key not in self._runners:
            self._runners[key] = ExperimentRunner(
                name, machine=machine, max_instructions=MAX_INSTS, threshold=threshold
            )
        return self._runners[key]


@pytest.fixture(scope="session")
def runners() -> RunnerCache:
    return RunnerCache()


@pytest.fixture(scope="session")
def wide_machine() -> MachineConfig:
    return aggressive_config()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
