#!/usr/bin/env python3
"""The Section 7.3 compiler walkthrough: creating same-register reuse.

Profiles a workload on its *train* input, runs the graph-colouring register
reallocator (dead-register live-range merging + loop-exclusive registers for
last-value reuse), shows the instruction-level diff it produced, and measures
how much same-register reuse — and pipeline performance — the transformation
buys on the *ref* input.

Usage:
    python examples/compiler_reallocation.py [workload]   # default: mgrid
"""

import sys

from repro.compiler import reallocate
from repro.core import ExperimentRunner
from repro.profiling import ReuseProfile
from repro.sim import run_program


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mgrid"
    runner = ExperimentRunner(name, max_instructions=40_000)
    workload = runner.workload

    lists = runner.profile_lists()
    print(f"{name}: profile lists from the train input")
    print(f"  same-register reuse : {len(lists.same)} instructions")
    print(f"  dead-register corr. : {len(lists.dead)} instructions")
    print(f"  last-value reuse    : {len(lists.last_value)} instructions\n")

    new_program = runner.program_variant("realloc")
    report = runner.realloc_report
    print("reallocation report:")
    print(f"  dead reuses: {report.dead_applied} applied / {report.dead_attempted} attempted "
          f"({report.dead_conflicting} conflicting live ranges, {report.dead_foreign} foreign/fixed)")
    print(f"  LVR reuses : {report.lvr_applied} applied / {report.lvr_attempted} attempted "
          f"({report.lvr_not_in_loop} not in a loop, {report.lvr_shared} shared webs)\n")

    print("instructions rewritten:")
    for before, after in zip(workload.program, new_program):
        if before.render() != after.render():
            print(f"  pc {before.pc:3d}:  {before.render():30s} ->  {after.render()}")

    budget = 40_000
    base_run = run_program(workload.program, memory=workload.memory("ref"), max_instructions=budget, collect_trace=True)
    new_run = run_program(new_program, memory=workload.memory("ref"), max_instructions=budget, collect_trace=True)
    before_frac = ReuseProfile.from_trace(base_run.trace).fig1.fractions()["same"]
    after_frac = ReuseProfile.from_trace(new_run.trace).fig1.fractions()["same"]
    print(f"\nsame-register reuse of loads: {before_frac:.1%} -> {after_frac:.1%}")

    base = runner.run("no_predict").ipc
    plain = runner.run("drvp_all").ipc
    realloc = runner.run("drvp_all_realloc").ipc
    ideal = runner.run("drvp_all_dead_lv").ipc
    lvp = runner.run("lvp").ipc
    print("\npipeline speedups over no-prediction (Figure 7 shape):")
    print(f"  lvp (1K-entry table)       {lvp / base:6.3f}")
    print(f"  drvp_all, no reallocation  {plain / base:6.3f}")
    print(f"  drvp_all + realistic realloc {realloc / base:6.3f}")
    print(f"  drvp_all + ideal realloc   {ideal / base:6.3f}")


if __name__ == "__main__":
    main()
