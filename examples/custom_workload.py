#!/usr/bin/env python3
"""Bring your own program: assemble, profile, predict, simulate.

Shows the full library surface on a hand-written assembly kernel — a sparse
dot product whose index vector is mostly zeros (the paper's "constant
locality" case, Section 3):

1. assemble a program from text,
2. run it functionally and profile register reuse,
3. derive the four profile lists,
4. simulate the Table 1 pipeline with and without dynamic RVP.

Usage:
    python examples/custom_workload.py
"""

import random

from repro.isa import assemble
from repro.profiling import ReuseProfile, critical_path_profile
from repro.sim import Memory, run_program
from repro.uarch import RecoveryScheme, simulate, table1_config
from repro.vp import DynamicRVP, NoPredictor

KERNEL = """
; sparse dot product with a skip branch: the x[i] load feeds a branch, so
; predicting the (mostly zero) loaded value resolves the branch early.
.proc main
main:
    li   r13, #6            ; passes over the vectors
    li   r12, #0            ; sum
pass:
    li   r9,  #0x1000       ; x base
    li   r10, #0x9000       ; w base
    li   r11, #1024         ; elements
loop:
    ld   r1, 0(r9)          ; x[i] -- mostly zero: constant locality
    beq  r1, next           ; sparse skip, gated by the load
    ld   r2, 0(r10)         ; w[i]
    mul  r3, r1, r2
    add  r12, r12, r3
next:
    add  r9,  r9,  #8
    add  r10, r10, #8
    sub  r11, r11, #1
    bne  r11, loop
    sub  r13, r13, #1
    bne  r13, pass
    st   r12, 0(r31)
    halt
"""


def build_memory(seed: int = 7) -> Memory:
    """x is block-sparse: long zero stretches with small dense clusters —
    the structure of real sparse operands, and what gives the resetting
    confidence counters streaks long enough to open up."""
    rng = random.Random(seed)
    x = []
    while len(x) < 1024:
        x.extend([0] * rng.randrange(20, 80))
        x.extend(rng.randrange(1, 100) for _ in range(rng.randrange(2, 6)))
    memory = Memory()
    memory.write_words(0x1000, x[:1024])
    memory.write_words(0x9000, [rng.randrange(1, 100) for _ in range(1024)])
    return memory


def main() -> None:
    program = assemble(KERNEL, name="sparse_dot")

    # Functional run + profiling.
    result = run_program(program, memory=build_memory(), max_instructions=120_000, collect_trace=True)
    print(f"functional: {result.instructions} instructions, sum = {result.memory.load(0)}")

    profile = ReuseProfile.from_trace(result.trace)
    x_load = next(s for s in profile.sites.values() if s.is_load)
    print(f"x[i] load: same-register reuse {x_load.same_rate():.1%}, last-value {x_load.lv_rate():.1%}")
    lists = profile.profile_lists(threshold=0.8)
    print(f"profile lists: same={sorted(lists.same)} dead={sorted(lists.dead)} lv={sorted(lists.last_value)}")

    # Pipeline with and without RVP (fresh trace on a different input seed).
    trace = run_program(program, memory=build_memory(seed=8), max_instructions=120_000, collect_trace=True).trace
    machine = table1_config()
    base = simulate(trace, NoPredictor(), machine)
    rvp = simulate(trace, DynamicRVP(lists=lists, use_dead=True, use_lv=True), machine, RecoveryScheme.SELECTIVE)
    print(f"\nno_predict : IPC {base.ipc:.3f}")
    print(f"dynamic RVP: IPC {rvp.ipc:.3f}  (speedup {rvp.ipc / base.ipc:.3f}, "
          f"coverage {rvp.coverage:.1%}, accuracy {rvp.accuracy:.1%})")


if __name__ == "__main__":
    main()
