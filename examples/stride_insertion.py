#!/usr/bin/env python3
"""Section 3, "Et Cetera": stride prediction via one inserted add.

The paper lists stride prediction among the reuse patterns RVP can absorb
without any stride hardware: "Stride prediction can be accomplished with the
insertion of an add instruction."  This example walks an indirection vector
whose *values* stride by 16 (a pointer table):

    loop: ld r1, 0(r2)   ; v[i] = heap + 16*i  -- never equal to its last value
          ld r4, 0(r1)   ; pointer chase, address depends on the load above

Neither last-value nor plain register-value prediction can touch ``v[i]``.
The stride pass (1) profiles the constant delta, (2) inserts
``add rS, r1, #16`` after the load so a shadow register always holds the
*next* value, and (3) points the dead-register hint at ``rS`` — after which
ordinary storageless RVP predicts the pointer load perfectly and the
address-generation chain collapses.

Usage:
    python examples/stride_insertion.py
"""

from repro.compiler import apply_stride_pass
from repro.isa import assemble
from repro.profiling import StrideProfile
from repro.sim import Memory, run_program
from repro.uarch import simulate, table1_config
from repro.vp import DynamicRVP, LastValuePredictor, NoPredictor

KERNEL = """
    li r2, #0x1000
    li r3, #800
loop:
    ld r1, 0(r2)        ; indirection vector: values stride by 16
    ld r4, 0(r1)        ; chase
    add r5, r5, r4
    add r2, r2, #8
    sub r3, r3, #1
    bne r3, loop
    st r5, 0(r31)
    halt
"""


def build_memory() -> Memory:
    memory = Memory()
    memory.write_words(0x1000, [0x40000 + 16 * i for i in range(800)])
    for i in range(1700):
        memory.store(0x40000 + 8 * i, (i * 37) % 1000)
    return memory


def main() -> None:
    program = assemble(KERNEL, name="pointer_walk")
    machine = table1_config()

    trace = run_program(program, memory=build_memory(), max_instructions=50_000, collect_trace=True).trace
    strides = StrideProfile.from_trace(trace).strided_pcs(0.9, loads_only=True)
    print("profiled strides (pc -> delta):", strides)

    new_program, lists, report = apply_stride_pass(program, strides)
    print(f"stride pass: {report.applied} shadow add(s) inserted\n")
    for inst in new_program:
        marker = "   <-- inserted" if inst.pc == 3 else ""
        print(f"  {inst.pc:2d}  {inst.render()}{marker}")

    new_trace = run_program(new_program, memory=build_memory(), max_instructions=50_000, collect_trace=True).trace
    base = simulate(new_trace, NoPredictor(), machine)
    lvp = simulate(new_trace, LastValuePredictor(loads_only=True), machine)
    plain = simulate(new_trace, DynamicRVP(), machine)
    stride_rvp = simulate(new_trace, DynamicRVP(lists=lists, use_dead=True), machine)

    print(f"\n{'scheme':26s} {'speedup':>8s} {'coverage':>9s} {'accuracy':>9s}")
    for label, stats in (
        ("lvp (value table)", lvp),
        ("drvp (no assistance)", plain),
        ("drvp + stride insertion", stride_rvp),
    ):
        print(f"{label:26s} {stats.ipc / base.ipc:8.3f} {stats.coverage:9.1%} {stats.accuracy:9.1%}")


if __name__ == "__main__":
    main()
