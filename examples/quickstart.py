#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline comparison on one benchmark.

Runs the m88ksim workload model on the paper's Table 1 machine under five
configurations — no prediction, buffer-based last-value prediction, and
dynamic register-value prediction at three compiler-assistance levels — and
prints IPC, speedup, coverage and accuracy for each.

Usage:
    python examples/quickstart.py [workload] [max_instructions]
"""

import sys

from repro.core import ExperimentRunner
from repro.vp import DynamicRVP, LastValuePredictor, NoPredictor, estimate_storage

CONFIGS = ("no_predict", "lvp_all", "drvp_all", "drvp_all_dead", "drvp_all_dead_lv")
_STORAGE = {
    "no_predict": NoPredictor(),
    "lvp_all": LastValuePredictor(loads_only=False),
    "drvp_all": DynamicRVP(),
    "drvp_all_dead": DynamicRVP(use_dead=True),
    "drvp_all_dead_lv": DynamicRVP(use_dead=True, use_lv=True),
}


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000
    print(f"workload={workload}, simulating {budget} committed instructions per run\n")

    runner = ExperimentRunner(workload, max_instructions=budget)
    base = runner.run("no_predict")
    print(f"{'config':18s} {'IPC':>7s} {'speedup':>8s} {'coverage':>9s} {'accuracy':>9s} {'storage':>10s}")
    for config in CONFIGS:
        result = runner.run(config)
        stats = result.stats
        storage = estimate_storage(_STORAGE[config]).total_bytes / 1024
        print(
            f"{config:18s} {stats.ipc:7.3f} {stats.ipc / base.ipc:8.3f} "
            f"{stats.coverage:9.1%} {stats.accuracy:9.1%} {storage:8.2f}KB"
        )
    print(
        "\nThe storage column is the paper's whole argument: RVP's predictions"
        "\ncome out of the register file — only the 3-bit confidence counters"
        "\nare new hardware, ~1/36th of the last-value predictor's tables."
    )


if __name__ == "__main__":
    main()
