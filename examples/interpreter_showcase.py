#!/usr/bin/env python3
"""The interpreter showcase: why RVP beats a value table on m88ksim.

SPEC95 m88ksim is an interpreter: its hot loop loads the guest pc from the
simulated CPU state, fetches the guest instruction, decodes it serially and
dispatches.  Two of the paper's mechanisms light up here:

1. **Cross-instruction prediction (Figure 2b).**  The next-pc value computed
   and stored by one iteration is exactly what the pc *load* of the next
   iteration returns — a store→load correlation no per-pc last-value table
   can see, but that the dead-register profile list hands straight to RVP.
2. **Recovery-scheme pressure (Section 7.1.1).**  The same run under the
   three recovery schemes shows selective reissue winning, with plain refetch
   surprisingly competitive because it never holds instruction-queue entries.

Usage:
    python examples/interpreter_showcase.py [max_instructions]
"""

import sys

from repro.core import ExperimentRunner
from repro.uarch import RecoveryScheme


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    runner = ExperimentRunner("m88ksim", max_instructions=budget)
    base = runner.run("no_predict")
    print(f"m88ksim baseline: IPC {base.ipc:.3f}\n")

    print("--- predictors (selective reissue) ---")
    for config in ("lvp_all", "grp_all", "drvp_all", "drvp_all_dead"):
        result = runner.run(config)
        print(
            f"{config:15s} speedup {result.ipc / base.ipc:6.3f}   "
            f"coverage {result.stats.coverage:5.1%}  accuracy {result.stats.accuracy:5.1%}"
        )

    lists = runner.profile_lists()
    program = runner.workload.program
    print("\n--- what the dead list found (instruction -> prediction source) ---")
    for pc, hint in sorted(lists.dead.items()):
        if pc not in lists.same:
            print(f"  pc {pc:3d}: {program[pc].render():28s} predict from {hint.reg.name}"
                  f" (produced at pc {hint.producer_pc})")

    print("\n--- recovery schemes for drvp_all_dead ---")
    for scheme in RecoveryScheme:
        result = runner.run("drvp_all_dead", recovery=scheme)
        stats = result.stats
        extra = f"squashes {stats.value_squashes}" if scheme is RecoveryScheme.REFETCH else f"reissued {stats.reissued_instructions}"
        print(f"{scheme.value:10s} speedup {result.ipc / base.ipc:6.3f}   ({extra})")


if __name__ == "__main__":
    main()
